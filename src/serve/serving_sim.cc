#include "serve/serving_sim.hh"

#include <algorithm>
#include <chrono>
#include <limits>
#include <string>

#include "core/error.hh"
#include "core/thread_pool.hh"
#include "serve/kv_cache.hh"

namespace laer
{

namespace
{

constexpr Seconds kNever = std::numeric_limits<Seconds>::infinity();

/** Validate and fill the derived fields of the configuration. */
ServingConfig
normalizeConfig(const Cluster &cluster, ServingConfig config)
{
    config.model.validate();
    const int n = cluster.numDevices();
    const int experts = config.model.numExperts;
    LAER_CHECK(config.capacity >= 1, "capacity must be positive");
    LAER_CHECK(n * config.capacity >= experts,
               "cluster too small to host every expert");
    LAER_CHECK(config.simulatedLayers >= 1 &&
                   config.simulatedLayers <= config.model.layers,
               "simulated layer count out of range");
    LAER_CHECK(config.horizon > 0.0, "horizon must be positive");
    LAER_CHECK(config.retunePeriod >= 1,
               "retune period must be positive");
    LAER_CHECK(config.hostLinkBw > 0,
               "host-link bandwidth must be positive");

    config.batcher.numDevices = n;
    config.batcher.numSloClasses = config.arrival.numSloClasses;

    config.routing.numDevices = n;
    config.routing.numExperts = experts;
    config.routing.topK = config.model.topK;
    config.routing.tokensPerDevice =
        std::max<TokenCount>(1, config.batcher.tokenBudget / n);

    config.tuner.capacity = config.capacity;
    if (config.tuner.cost.commBytesPerToken == 0)
        config.tuner.cost.commBytesPerToken = config.model.tokenBytes();
    if (config.tuner.cost.compFlopsPerToken == 0)
        config.tuner.cost.compFlopsPerToken =
            config.model.expertFlopsPerToken();

    LAER_CHECK(!config.desParallel ||
                   config.policy != ServingPolicy::Disaggregated,
               "the windowed event core cannot run disaggregated pools "
               "(prefill->decode migrations couple the engines inside "
               "a window)");

    if (config.policy == ServingPolicy::Disaggregated) {
        LAER_CHECK(n >= 2, "disaggregation needs at least two devices");
        if (config.disagg.prefillDevices == 0)
            config.disagg.prefillDevices = n / 2;
        const int prefill = config.disagg.prefillDevices;
        const int decode = n - prefill;
        LAER_CHECK(prefill >= 1 && decode >= 1,
                   "prefill pool size " << prefill
                                        << " leaves no decode pool on "
                                        << n << " devices");
        LAER_CHECK(prefill * config.capacity >= experts &&
                       decode * config.capacity >= experts,
                   "each pool must be able to host every expert");
        LAER_CHECK(config.disagg.poolPolicy !=
                       ServingPolicy::Disaggregated,
                   "pool policy cannot itself be Disaggregated");
        if (config.disagg.sharedLayout) {
            LAER_CHECK(prefill == decode,
                       "shared-layout disaggregation needs equal pools "
                       "(" << prefill << " vs " << decode << ")");
            LAER_CHECK(config.disagg.poolPolicy ==
                           ServingPolicy::LaerServe,
                       "shared-layout disaggregation needs LaerServe "
                       "pools (only the LAER tuner supports the "
                       "leader/follower split)");
        }
        LAER_CHECK(config.replicas.replicaDevices == 0,
                   "replica slicing and disaggregation are exclusive "
                   "simulator topologies");
    }

    if (config.replicas.replicaDevices > 0) {
        const int rd = config.replicas.replicaDevices;
        LAER_CHECK(n % rd == 0, "replica size "
                                    << rd << " must divide the "
                                    << n << "-device cluster");
        LAER_CHECK(rd * config.capacity >= experts,
                   "each replica must be able to host every expert");
        const int slots = n / rd;
        if (config.replicas.initialReplicas == 0)
            config.replicas.initialReplicas = slots;
        LAER_CHECK(config.replicas.initialReplicas >= 1 &&
                       config.replicas.initialReplicas <= slots,
                   "initial replica count "
                       << config.replicas.initialReplicas
                       << " out of range [1, " << slots << "]");
    }
    return config;
}

} // namespace

ServingSimulator::ServingSimulator(const Cluster &cluster,
                                   const ServingConfig &config)
    : cluster_(cluster), config_(normalizeConfig(cluster, config)),
      arrivals_(config_.arrival),
      metrics_(config_.sloTtft, config_.metricsMode)
{
    // One worker pool shared by every engine (engines step one at a
    // time, so there is no contention). threads == 1 stays pool-free.
    if (ThreadPool::resolveThreads(config_.threads) > 1)
        threadPool_ = std::make_unique<ThreadPool>(config_.threads);
    if (config_.policy == ServingPolicy::Disaggregated) {
        const int prefill = config_.disagg.prefillDevices;
        slices_ = partitionCluster(
            cluster_, {prefill, cluster_.numDevices() - prefill},
            {"prefill", "decode"});
    } else if (config_.replicas.replicaDevices > 0) {
        const int rd = config_.replicas.replicaDevices;
        const int slots = cluster_.numDevices() / rd;
        std::vector<int> counts(slots, rd);
        std::vector<std::string> names;
        for (int i = 0; i < slots; ++i)
            names.push_back("replica" + std::to_string(i));
        slices_ = partitionCluster(cluster_, counts, names);
    } else {
        slices_.push_back(wholeClusterSlice(cluster_));
    }
    for (std::size_t i = 0; i < slices_.size(); ++i)
        engines_.push_back(std::make_unique<ServingEngine>(
            slices_[i],
            engineConfigFor(slices_[i], static_cast<int>(i))));
    freeAt_.assign(engines_.size(), 0.0);
    poolStats_.resize(engines_.size());
    retuneSeen_.assign(engines_.size(), 0);
    drainStart_.assign(engines_.size(), -1.0);
    nextSnapshot_ = config_.snapshotInterval;
    desParallel_ = config_.desParallel;
    barrier_ = kNever;
    retuneReplayed_.assign(engines_.size(), 0);
    // Calendar handles: one per engine (keyed by index) plus the two
    // singleton streams. Nothing is scheduled yet — every engine is
    // free at t = 0 and the first arrival is unknown until the first
    // pump.
    for (std::size_t i = 0; i < engines_.size(); ++i)
        engineWake_.push_back(
            calendar_.makeHandle(static_cast<int>(i)));
    arrivalWake_ =
        calendar_.makeHandle(static_cast<int>(engines_.size()));
    migrationWake_ =
        calendar_.makeHandle(static_cast<int>(engines_.size()) + 1);
    faultWake_ =
        calendar_.makeHandle(static_cast<int>(engines_.size()) + 2);
    retryWake_ =
        calendar_.makeHandle(static_cast<int>(engines_.size()) + 3);
    // Fault injection is strictly opt-in: with the plan empty every
    // hook below stays behind one bool and the run is byte-for-byte
    // with its fault-free history.
    faultsEnabled_ = config_.faults.enabled();
    if (faultsEnabled_)
        faultPlan_ =
            expandFaultPlan(config_.faults,
                            static_cast<int>(engines_.size()),
                            config_.horizon);
    pendingKill_.assign(engines_.size(), 0);
    stragglerFactor_.assign(engines_.size(), 1.0);
    deadDevices_.assign(engines_.size(), 0);
    faultDownSince_.assign(engines_.size(), -1.0);
    failedByClass_.assign(
        static_cast<std::size_t>(config_.arrival.numSloClasses), 0);
    // Replica slices beyond the initial count start parked: their
    // devices are dark until the control plane spins them up.
    if (config_.replicas.replicaDevices > 0)
        for (std::size_t i = config_.replicas.initialReplicas;
             i < engines_.size(); ++i)
            engines_[i]->drain();
}

ServingSimulator::~ServingSimulator() = default;

EngineConfig
ServingSimulator::engineConfigFor(const DevicePoolSlice &slice,
                                  int pool_index) const
{
    const int n = slice.numDevices();
    const int cluster_n = cluster_.numDevices();

    EngineConfig ec;
    ec.model = config_.model;
    ec.policy = config_.policy == ServingPolicy::Disaggregated
                    ? config_.disagg.poolPolicy
                    : config_.policy;
    ec.capacity = config_.capacity;
    ec.simulatedLayers = config_.simulatedLayers;
    ec.stepOverhead = config_.stepOverhead;
    ec.retunePeriod = config_.retunePeriod;
    ec.tuner = config_.tuner;
    // The engine only adopts decision.layout; the dense winner plan
    // would be built and thrown away (steps price from the sparse
    // path), so skip it regardless of the caller's tuner default.
    ec.tuner.buildPlan = false;
    ec.tuner.pool = threadPool_.get();
    ec.pool = threadPool_.get();
    ec.tunerBudgetMs = config_.tunerBudgetMs;
    // Windowed runs advance engines on worker threads; the registry is
    // not thread-safe, so the engines run detached and the simulator
    // replays their retune wall samples serially at each merge
    // (replayRetuneMetrics).
    ec.metrics =
        config_.desParallel ? nullptr : config_.metricsRegistry;
    ec.flexMaxMoves = config_.flexMaxMoves;
    ec.hostLinkBw = config_.hostLinkBw;
    // Engines draw from disjoint seed streams; pool 0 keeps the run's
    // base seed so single-engine runs reproduce PR 1-2 bit-for-bit.
    ec.seed = config_.seed +
              104729ULL * static_cast<std::uint64_t>(pool_index);
    // Shared-layout disaggregation: the decode pool (index 1) leads,
    // the prefill pool follows via setLayouts().
    ec.tuningEnabled = !(config_.policy == ServingPolicy::Disaggregated &&
                         config_.disagg.sharedLayout && pool_index == 0);

    ec.batcher = config_.batcher;
    ec.batcher.numDevices = n;
    // A pool's step budget is its device share of the cluster budget.
    ec.batcher.tokenBudget = std::max<TokenCount>(
        1, config_.batcher.tokenBudget * n / cluster_n);
    if (config_.hbmPerDevice > 0) {
        // Derive the pool's KV budget from simulated HBM: model state
        // and the activation working set come off the top (Sec. 3.1
        // memory model applied to inference), the remainder is KV, and
        // the batcher switches from maxRunning slots to byte
        // accounting.
        const ServingMemoryBudget mem = servingMemoryBudget(
            config_.model, n, config_.capacity, config_.hbmPerDevice,
            std::max<TokenCount>(1, ec.batcher.tokenBudget / n));
        ec.batcher.kvBudgetBytes = mem.kvPoolTotal;
        ec.batcher.kvBytesPerToken = kvBytesPerToken(config_.model);
        ec.batcher.kvBlockTokens = config_.kvBlockTokens;
    } else if (config_.batcher.kvBudgetBytes > 0) {
        // Direct pool sizing: split the configured budget by device
        // share.
        ec.batcher.kvBudgetBytes =
            config_.batcher.kvBudgetBytes * n / cluster_n;
    }

    ec.routing = config_.routing;
    ec.routing.numDevices = n;
    ec.routing.tokensPerDevice =
        std::max<TokenCount>(1, ec.batcher.tokenBudget / n);
    return ec;
}

Seconds
ServingSimulator::loadDelayFor(const DevicePoolSlice &slice) const
{
    // Every device of the pool restores its own shard of the
    // inference-time model state (Sec. 3.1 residency: fully sharded
    // bf16 parameters + the unsharded working set) over its host
    // link in parallel, so the per-device bytes set the delay.
    const Bytes per_device =
        inferenceModelState(config_.model, slice.numDevices(),
                            config_.capacity)
            .total();
    return static_cast<double>(per_device) / config_.hostLinkBw;
}

bool
ServingSimulator::poolMemoryFeasible(int devices) const
{
    if (config_.hbmPerDevice <= 0)
        return true;
    const TokenCount step_tokens = std::max<TokenCount>(
        1, config_.batcher.tokenBudget / cluster_.numDevices());
    try {
        servingMemoryBudget(config_.model, devices, config_.capacity,
                            config_.hbmPerDevice, step_tokens);
        return true;
    } catch (const FatalError &) {
        return false; // model shard + activations leave no KV pool
    }
}

Bytes
ServingSimulator::poolKvBudgetFor(int devices) const
{
    if (config_.hbmPerDevice > 0) {
        const TokenCount step_tokens = std::max<TokenCount>(
            1, config_.batcher.tokenBudget / cluster_.numDevices());
        return servingMemoryBudget(config_.model, devices,
                                   config_.capacity,
                                   config_.hbmPerDevice, step_tokens)
            .kvPoolTotal;
    }
    if (config_.batcher.kvBudgetBytes > 0)
        return config_.batcher.kvBudgetBytes * devices /
               cluster_.numDevices();
    return 0; // maxRunning slot mode
}

Bytes
ServingSimulator::kvBytesForContext(TokenCount context) const
{
    Bytes per_token = 0;
    TokenCount block = 1;
    if (config_.hbmPerDevice > 0) {
        per_token = kvBytesPerToken(config_.model);
        block = config_.kvBlockTokens;
    } else if (config_.batcher.kvBudgetBytes > 0) {
        per_token = config_.batcher.kvBytesPerToken;
        block = config_.batcher.kvBlockTokens;
    } else {
        return 0;
    }
    const TokenCount blocks = (context + block - 1) / block;
    return blocks * block * per_token;
}

int
ServingSimulator::minPoolDevices() const
{
    int floor = (config_.model.numExperts + config_.capacity - 1) /
                config_.capacity;
    // Shards grow as pools shrink, so feasibility is monotone in the
    // pool size: walk up until the memory budget closes.
    while (floor < cluster_.numDevices() && !poolMemoryFeasible(floor))
        ++floor;
    return floor;
}

int
ServingSimulator::poweredDevices() const
{
    // Disaggregation re-purposes devices but never releases them;
    // only replica scale-down turns slices dark.
    if (config_.policy == ServingPolicy::Disaggregated)
        return cluster_.numDevices();
    int devices = 0;
    for (std::size_t i = 0; i < engines_.size(); ++i)
        if (engines_[i]->state() != EngineState::Stopped)
            devices += slices_[i].numDevices();
    return devices;
}

void
ServingSimulator::accruePower(Seconds t)
{
    LAER_ASSERT(t >= lastPowerAccrual_, "power accrual went backwards");
    deviceSeconds_ += (t - lastPowerAccrual_) * poweredDevices();
    lastPowerAccrual_ = t;
}

double
ServingSimulator::deviceSecondsSoFar() const
{
    return deviceSeconds_ +
           (now_ - lastPowerAccrual_) * poweredDevices();
}

int
ServingSimulator::activeReplicas() const
{
    int live = 0;
    for (const auto &engine : engines_)
        if (engine->state() != EngineState::Stopped)
            ++live;
    return live;
}

int
ServingSimulator::prefillDevices() const
{
    return config_.policy == ServingPolicy::Disaggregated
               ? slices_[0].numDevices()
               : 0;
}

bool
ServingSimulator::reconfigPending() const
{
    if (pending_.active)
        return true;
    for (const auto &engine : engines_)
        if (engine->state() == EngineState::Draining)
            return true;
    return false;
}

int
ServingSimulator::pickEngineForArrival() const
{
    // Least-loaded live replica; Loading counts (its queue serves the
    // moment the shards land), ties go to the lowest slot.
    int best = -1;
    int best_load = 0;
    for (std::size_t i = 0; i < engines_.size(); ++i) {
        const EngineState state = engines_[i]->state();
        if (state != EngineState::Active && state != EngineState::Loading)
            continue;
        const int load = engines_[i]->batcher().waitingCount() +
                         engines_[i]->batcher().runningCount();
        if (best < 0 || load < best_load) {
            best = static_cast<int>(i);
            best_load = load;
        }
    }
    LAER_ASSERT(best >= 0, "no live replica to dispatch to");
    return best;
}

bool
ServingSimulator::requestReplicas(int target)
{
    LAER_CHECK(config_.replicas.replicaDevices > 0,
               "requestReplicas needs replica slicing "
               "(ReplicaConfig::replicaDevices)");
    const int slots = replicaSlots();
    target = std::min(std::max(target, 1), slots);
    if (reconfigPending())
        return false;
    const int live = activeReplicas();
    if (target == live)
        return false;

    if (target > live) {
        // Scale up: rebuild the lowest parked slots behind the model
        // load; they accept arrivals immediately and step once loaded.
        accruePower(now_);
        Seconds delay = 0.0;
        int spun = 0;
        for (std::size_t i = 0; i < engines_.size() &&
                                live + spun < target; ++i) {
            if (engines_[i]->state() != EngineState::Stopped)
                continue;
            retireEngineCounters(i);
            if (faultsEnabled_) {
                // A rebuilt slice comes back whole, exactly like a
                // scripted repair (applyRepair); when this slot died
                // of a fault, its MTTR clock closes at the Active
                // promote in applyReconfig().
                deadDevices_[i] = 0;
                stragglerFactor_[i] = 1.0;
            }
            engines_[i] = std::make_unique<ServingEngine>(
                slices_[i],
                engineConfigFor(slices_[i], static_cast<int>(i)),
                EngineState::Loading);
            const Seconds d = loadDelayFor(slices_[i]);
            freeAt_[i] = now_ + d;
            scheduleEngineWake(i);
            delay = std::max(delay, d);
            ++spun;
        }
        ScalingEvent event;
        event.requested = now_;
        event.applied = now_ + delay;
        event.action = "replicas";
        event.before = live;
        event.after = target;
        event.loadDelay = delay;
        scalingEvents_.push_back(event);
        emitScalingEvent(event);
    } else {
        // Scale down: close admission on the highest live slots; the
        // drain itself completes in applyReconfig() at each victim's
        // next idle moment.
        pending_ = PendingReconfig{};
        pending_.active = true;
        pending_.target = target;
        pending_.requestedAt = now_;
        pending_.before = live;
        int to_drain = live - target;
        for (int i = slots - 1; i >= 0 && to_drain > 0; --i) {
            const EngineState state = engines_[i]->state();
            if (state != EngineState::Active &&
                state != EngineState::Loading)
                continue;
            if (state == EngineState::Loading)
                freeAt_[i] = now_; // no step in flight: drain at once
            engines_[i]->beginDrain();
            drainStart_[static_cast<std::size_t>(i)] = now_;
            scheduleEngineWake(static_cast<std::size_t>(i));
            --to_drain;
        }
        applyReconfig();
    }
    return true;
}

bool
ServingSimulator::requestSplit(int prefill_devices)
{
    LAER_CHECK(config_.policy == ServingPolicy::Disaggregated,
               "requestSplit needs a disaggregated run");
    LAER_CHECK(!config_.disagg.sharedLayout,
               "dynamic pool sizing cannot rebalance a shared-layout "
               "run (the pools must stay equal)");
    const int n = cluster_.numDevices();
    const int decode = n - prefill_devices;
    // The floor covers both the expert-hosting constraint and — with
    // the KV model on — memory feasibility, so an accepted split can
    // never fail inside the post-drain engine rebuild.
    const int min_pool = minPoolDevices();
    if (reconfigPending())
        return false;
    if (prefill_devices == slices_[0].numDevices())
        return false;
    if (prefill_devices < min_pool || decode < min_pool)
        return false;
    if (!cluster_.isNodeRegularSlice(0, prefill_devices) ||
        !cluster_.isNodeRegularSlice(prefill_devices, decode))
        return false;

    // Every live context must stay admissible after the shrink: the
    // biggest FULL context among running/waiting requests, in-flight
    // migrations and prefill-held decode targets has to fit both new
    // pools' KV budgets (conservative: the prefill pool only ever
    // sees prompt + 1, but one ceiling keeps the check simple), or
    // re-homing would blow up enqueue() after the drain.
    TokenCount max_ctx = 0;
    for (const auto &engine : engines_)
        max_ctx = std::max(max_ctx,
                           engine->batcher().maxLiveFullContext());
    for (const PendingMigration &m : migrations_)
        max_ctx = std::max(max_ctx, m.request.prefillTokens +
                                        m.request.decodeTokens);
    for (const auto &[id, target] : decodeTargets_)
        if (const Request *r = engines_[0]->batcher().find(id))
            max_ctx = std::max(max_ctx, r->prefillTokens + target);
    if (max_ctx > 0) {
        const Bytes need = kvBytesForContext(max_ctx);
        for (const int pool : {prefill_devices, decode}) {
            const Bytes budget = poolKvBudgetFor(pool);
            if (budget > 0 && need > budget)
                return false;
        }
    }

    pending_ = PendingReconfig{};
    pending_.active = true;
    pending_.split = true;
    pending_.target = prefill_devices;
    pending_.requestedAt = now_;
    pending_.before = slices_[0].numDevices();
    pending_.held.assign(2, {});
    for (int i = 0; i < 2; ++i) {
        if (engines_[i]->state() == EngineState::Loading)
            freeAt_[i] = now_; // no step in flight: drain at once
        engines_[i]->beginDrain();
        drainStart_[static_cast<std::size_t>(i)] = now_;
        scheduleEngineWake(static_cast<std::size_t>(i));
    }
    applyReconfig();
    return true;
}

void
ServingSimulator::recordControlWindow(const ControlWindowSample &sample)
{
    windows_.push_back(sample);
}

// ---- observability plumbing -----------------------------------------
// Every helper below is write-only: nothing recorded here is ever read
// back by the simulation, so the attached/unattached states price
// identically.

std::string
ServingSimulator::obsPrefix() const
{
    return config_.obsLabel.empty() ? std::string()
                                    : config_.obsLabel + "/";
}

int
ServingSimulator::poolTrack(std::size_t i)
{
    return config_.trace->track(obsPrefix() + slices_[i].name);
}

int
ServingSimulator::plannerTrack(std::size_t i)
{
    return config_.trace->track(obsPrefix() + slices_[i].name +
                                "/planner");
}

int
ServingSimulator::kvTrack()
{
    return config_.trace->track(obsPrefix() + "kv_transfer");
}

int
ServingSimulator::controlTrack()
{
    return config_.trace->track(obsPrefix() + "control");
}

void
ServingSimulator::emitRetuneSpans(std::size_t i)
{
    const std::vector<RetuneWallSample> &samples =
        engines_[i]->retuneWall();
    if (config_.trace != nullptr) {
        for (std::size_t s = retuneSeen_[i]; s < samples.size(); ++s) {
            const RetuneWallSample &sample = samples[s];
            // Solver wall time drawn on the simulated timeline: the
            // span starts at the retuning step and is wallMs long, so
            // a budget overrun is visible at a glance even though the
            // solver runs off the simulated clock.
            config_.trace->span(
                plannerTrack(i), "retune", "planner", sample.simTime,
                sample.wallMs * 1e-3,
                {TraceArg{"wall_ms", sample.wallMs},
                 TraceArg{"budget_ms", config_.tunerBudgetMs},
                 TraceArg{"over_budget", sample.overBudget}});
        }
    }
    retuneSeen_[i] = samples.size();
}

void
ServingSimulator::emitScalingEvent(const ScalingEvent &event)
{
    LAER_METRIC_COUNT(config_.metricsRegistry, "ctrl.scaling_events",
                      1);
    LAER_TRACE_INSTANT(config_.trace, controlTrack(), event.action,
                       "ctrl", event.requested,
                       {TraceArg{"before", event.before},
                        TraceArg{"after", event.after},
                        TraceArg{"load_delay_s", event.loadDelay},
                        TraceArg{"rehomed", event.rehomed}});
}

void
ServingSimulator::updateRegistryGauges()
{
    MetricsRegistry *reg = config_.metricsRegistry;
    if (reg == nullptr)
        return;
    replayRetuneMetrics();
    std::int64_t admissions = admissionsBase_;
    int retunes = retiredRetunes_;
    int waiting = 0;
    int running = 0;
    double kv_util = 0.0;
    Bytes kv_reserved = 0;
    Bytes kv_budget = 0;
    for (const auto &engine : engines_) {
        admissions += engine->batcher().totalAdmissions();
        retunes += engine->retunes();
        waiting += engine->batcher().waitingCount();
        running += engine->batcher().runningCount();
        kv_reserved += engine->batcher().kvReservedBytes();
        kv_budget += engine->batcher().kvBudgetBytes();
        if (engine->batcher().kvEnabled())
            kv_util = std::max(kv_util,
                               engine->batcher().kvUtilization());
    }
    std::int64_t held = 0;
    for (const std::vector<Request> &h : pending_.held)
        held += static_cast<std::int64_t>(h.size());
    // Counters come from the simulator's authoritative totals via
    // set(), so engine rebuilds (replica spin-up, split) never lose
    // counts.
    reg->counter("serve.offered").set(offered_);
    reg->counter("serve.admissions").set(admissions);
    reg->counter("serve.completed").set(metrics_.completed());
    reg->counter("serve.slo_met").set(metrics_.sloMet());
    reg->counter("serve.decoded_tokens").set(metrics_.decodedTokens());
    reg->counter("serve.good_tokens").set(metrics_.goodTokens());
    reg->counter("serve.preemptions").set(metrics_.totalPreemptions());
    reg->counter("serve.steps")
        .set(static_cast<std::int64_t>(steps_.size()));
    reg->counter("serve.migrated").set(migrated_);
    reg->counter("serve.kv_transfer_bytes").set(kvTransferBytes_);
    reg->counter("planner.retunes").set(retunes);
    reg->gauge("serve.active_replicas").set(activeReplicas());
    reg->gauge("serve.queue_depth").set(waiting);
    reg->gauge("serve.running").set(running);
    // Requests parked between pools: contexts in flight to the decode
    // pool, and sequences held while a split re-partitions. Together
    // with queue_depth/running these close the request-conservation
    // identity the difftest probe layer checks:
    //   offered == completed + queue_depth + running + migrating + held
    reg->gauge("serve.migrating")
        .set(static_cast<double>(migrations_.size()));
    reg->gauge("serve.held").set(static_cast<double>(held));
    reg->gauge("serve.kv_utilization").set(kv_util);
    reg->gauge("serve.kv_reserved_bytes")
        .set(static_cast<double>(kv_reserved));
    reg->gauge("serve.kv_budget_bytes")
        .set(static_cast<double>(kv_budget));
    if (faultsEnabled_) {
        // Fault-plan series exist only on faulted runs, so the
        // fault-free metric stream (and the golden gate pinning it)
        // stays byte-for-byte. `serve.failed` and `serve.retrying`
        // extend the conservation identity above:
        //   offered == completed + queue_depth + running + migrating
        //              + held + retrying + failed
        reg->counter("serve.faults").set(faultsInjected_);
        reg->counter("serve.repairs").set(repairsDone_);
        reg->counter("serve.retries").set(requestsRetried_);
        reg->counter("serve.failed").set(requestsFailed_);
        reg->counter("serve.transfer_aborts").set(transfersAborted_);
        reg->gauge("serve.retrying")
            .set(static_cast<double>(retryQueue_.size()));
        reg->gauge("serve.dead_replicas").set(deadReplicas());
    }
    reg->gauge("serve.device_seconds").set(deviceSecondsSoFar());
    // The simulated clock the gauges were read at. Snapshots crossed
    // by a long event jump are stamped with their boundary time, which
    // can trail this clock — bounds like device_seconds <= N * t must
    // be checked against sim_now, not the stamp.
    reg->gauge("serve.sim_now").set(now_);
}

void
ServingSimulator::maybeSnapshot()
{
    if (config_.metricsRegistry == nullptr ||
        config_.snapshotInterval <= 0.0)
        return;
    // Snapshots are stamped with the boundary they represent; a long
    // event jump can cross several boundaries, each recorded with the
    // state as of the first event at-or-after it.
    while (now_ >= nextSnapshot_) {
        updateRegistryGauges();
        config_.metricsRegistry->recordSnapshot(nextSnapshot_);
        nextSnapshot_ += config_.snapshotInterval;
    }
}

void
ServingSimulator::retireEngineCounters(std::size_t i)
{
    emitRetuneSpans(i);
    replayRetuneMetrics(); // flush before the sample vector vanishes
    admissionsBase_ += engines_[i]->batcher().totalAdmissions();
    retiredRetunes_ += engines_[i]->retunes();
    // Preemption counters follow the same carry: the batcher's
    // per-class totals die with the engine, so fold them into the
    // retired base before the rebuild (a down-then-up replica cycle
    // with preemptions in flight must lose nothing).
    retiredPreemptions_ += engines_[i]->batcher().totalPreemptions();
    const std::vector<std::int64_t> &preempts =
        engines_[i]->batcher().preemptionsByClass();
    if (preempts.size() > retiredPreemptionsByClass_.size())
        retiredPreemptionsByClass_.resize(preempts.size(), 0);
    for (std::size_t c = 0; c < preempts.size(); ++c)
        retiredPreemptionsByClass_[c] += preempts[c];
    for (const RetuneWallSample &sample : engines_[i]->retuneWall())
        retiredRetuneWall_.push_back(sample);
    retuneSeen_[i] = 0;
    retuneReplayed_[i] = 0;
    drainStart_[i] = -1.0;
}

void
ServingSimulator::applyReconfig()
{
    // Promote engines whose model shards have landed.
    for (std::size_t i = 0; i < engines_.size(); ++i)
        if (engines_[i]->state() == EngineState::Loading &&
            freeAt_[i] <= now_) {
            engines_[i]->setReady();
            if (faultsEnabled_ && faultDownSince_[i] >= 0.0) {
                // The slot is serving again: close its MTTR clock,
                // whether a scripted repair or the autoscaler rebuilt
                // it.
                const Seconds mttr = now_ - faultDownSince_[i];
                mttrSamples_.push_back(mttr);
                ++repairsDone_;
                LAER_TRACE_SPAN(config_.trace, faultTrack(), "outage",
                                "fault", faultDownSince_[i], mttr,
                                {TraceArg{"pool",
                                          static_cast<int>(i)},
                                 TraceArg{"mttr_s", mttr}});
                faultDownSince_[i] = -1.0;
                updateDegraded();
            }
            scheduleEngineWake(i);
        }

    // Complete due drains. A Draining engine with freeAt_ <= now_ has
    // no step in flight: its live requests take the recompute
    // disposition and re-home.
    for (std::size_t i = 0; i < engines_.size(); ++i) {
        if (engines_[i]->state() != EngineState::Draining ||
            freeAt_[i] > now_)
            continue;
        harvestFinished(static_cast<int>(i));
        accruePower(now_);
        std::vector<Request> evicted = engines_[i]->drain();
        emitRetuneSpans(i);
        if (config_.trace != nullptr && drainStart_[i] >= 0.0)
            config_.trace->span(
                poolTrack(i), "drain", "ctrl", drainStart_[i],
                now_ - drainStart_[i],
                {TraceArg{"evicted",
                          static_cast<int>(evicted.size())}});
        drainStart_[i] = -1.0;
        if (pending_.split) {
            for (const Request &r : evicted)
                if (LAER_REQ_SAMPLED(config_.reqTrace, r.id))
                    LAER_REQ_EVENT(config_.reqTrace,
                                   onRehome(r.id, now_, -1));
            pending_.held[i] = std::move(evicted);
        } else {
            for (const Request &r : evicted) {
                // Under faults the survivors may all be dead too: the
                // eviction then takes the retry path instead of
                // asserting on an empty replica set.
                const int live =
                    faultsEnabled_ ? pickRetryTarget(r)
                                   : pickEngineForArrival();
                if (live < 0) {
                    scheduleRetry(r, now_);
                    continue;
                }
                const std::size_t target =
                    static_cast<std::size_t>(live);
                engines_[target]->enqueue(r);
                if (LAER_REQ_SAMPLED(config_.reqTrace, r.id))
                    LAER_REQ_EVENT(config_.reqTrace,
                                   onRehome(r.id, now_,
                                            static_cast<int>(target)));
                scheduleEngineWake(target);
            }
            pending_.rehomed += static_cast<int>(evicted.size());
        }
        scheduleEngineWake(i);
    }

    if (!pending_.active)
        return;

    if (pending_.split) {
        if (engines_[0]->state() != EngineState::Stopped ||
            engines_[1]->state() != EngineState::Stopped)
            return;
        // Both pools drained: re-partition, rebuild each engine on its
        // new slice behind the reshard delay, and re-home the held
        // requests pool-to-pool (prefill work stays prefill work).
        const int n = cluster_.numDevices();
        slices_ = partitionCluster(
            cluster_, {pending_.target, n - pending_.target},
            {"prefill", "decode"});
        Seconds delay = 0.0;
        for (int i = 0; i < 2; ++i) {
            retireEngineCounters(static_cast<std::size_t>(i));
            engines_[i] = std::make_unique<ServingEngine>(
                slices_[i], engineConfigFor(slices_[i], i),
                EngineState::Loading);
            const Seconds d = loadDelayFor(slices_[i]);
            freeAt_[i] = now_ + d;
            delay = std::max(delay, d);
            for (const Request &r : pending_.held[i]) {
                engines_[i]->enqueue(r);
                if (LAER_REQ_SAMPLED(config_.reqTrace, r.id))
                    LAER_REQ_EVENT(config_.reqTrace,
                                   onRehome(r.id, now_, i));
            }
            pending_.rehomed +=
                static_cast<int>(pending_.held[i].size());
            scheduleEngineWake(static_cast<std::size_t>(i));
        }
        ScalingEvent event;
        event.requested = pending_.requestedAt;
        event.applied = now_ + delay;
        event.action = "split";
        event.before = pending_.before;
        event.after = pending_.target;
        event.loadDelay = delay;
        event.rehomed = pending_.rehomed;
        scalingEvents_.push_back(event);
        emitScalingEvent(event);
        pending_ = PendingReconfig{};
    } else {
        for (const auto &engine : engines_)
            if (engine->state() == EngineState::Draining)
                return;
        ScalingEvent event;
        event.requested = pending_.requestedAt;
        event.applied = now_;
        event.action = "replicas";
        event.before = pending_.before;
        event.after = pending_.target;
        event.rehomed = pending_.rehomed;
        scalingEvents_.push_back(event);
        emitScalingEvent(event);
        pending_ = PendingReconfig{};
    }
}

void
ServingSimulator::pumpArrivals()
{
    while (!offeringClosed_) {
        if (!lookaheadValid_) {
            lookahead_ = arrivals_.next();
            lookaheadValid_ = true;
        }
        if (lookahead_.arrival >= config_.horizon) {
            // The stream stops offering at the horizon; the run then
            // drains whatever is in flight.
            offeringClosed_ = true;
            lookaheadValid_ = false;
            break;
        }
        if (lookahead_.arrival > now_)
            break;
        if (faultsEnabled_) {
            // Under a total outage the front door closes: the due
            // arrival holds until a repair brings an engine back (the
            // repair's own wake drives the clock meanwhile, the
            // drain-door idiom below).
            bool any_live = false;
            for (const auto &engine : engines_) {
                const EngineState state = engine->state();
                if (state == EngineState::Active ||
                    state == EngineState::Loading) {
                    any_live = true;
                    break;
                }
            }
            if (!any_live)
                break;
        }
        if (config_.policy == ServingPolicy::Disaggregated &&
            engines_[0]->state() != EngineState::Active &&
            engines_[0]->state() != EngineState::Loading)
            // The prefill pool is mid-reconfiguration: the front door
            // buffers the due arrival until the new pool exists (its
            // queueing delay lands in TTFT as usual).
            break;
        std::size_t target = 0;
        if (config_.policy == ServingPolicy::Disaggregated) {
            // The prefill pool runs the request only up to its first
            // token; the requested decode length is restored when the
            // context migrates to the decode pool.
            decodeTargets_[lookahead_.id] = lookahead_.decodeTokens;
            Request prefill_only = lookahead_;
            prefill_only.decodeTokens = 1;
            engines_[0]->enqueue(prefill_only);
        } else if (config_.replicas.replicaDevices > 0) {
            target = static_cast<std::size_t>(pickEngineForArrival());
            engines_[target]->enqueue(lookahead_);
        } else {
            engines_[0]->enqueue(lookahead_);
        }
        scheduleEngineWake(target);
        ++offered_;
        LAER_TRACE_INSTANT(config_.trace, poolTrack(target), "admit",
                           "serve", lookahead_.arrival,
                           {TraceArg{"id", lookahead_.id},
                            TraceArg{"prefill",
                                     lookahead_.prefillTokens},
                            TraceArg{"decode", lookahead_.decodeTokens},
                            TraceArg{"class", lookahead_.sloClass}});
        if (LAER_REQ_SAMPLED(config_.reqTrace, lookahead_.id))
            LAER_REQ_EVENT(config_.reqTrace,
                           onAdmit(lookahead_.id, lookahead_.sloClass,
                                   lookahead_.arrival,
                                   lookahead_.arrival,
                                   static_cast<int>(target)));
        lookaheadValid_ = false;
    }
    scheduleArrivalWake();
}

void
ServingSimulator::recordCompletion(const Request &done)
{
    metrics_.record(done);
    if (config_.metricsRegistry != nullptr) {
        config_.metricsRegistry->histogram("serve.ttft_s")
            .observe(done.ttft());
        if (done.decodeTokens >= 2)
            config_.metricsRegistry->histogram("serve.tpot_s")
                .observe(done.tpot());
    }
    retireSampledRequest(done);
}

void
ServingSimulator::captureStepShares(const ServingEngine &engine,
                                    const BatchPlan &plan,
                                    const ServingStepResult &result,
                                    int pool_index,
                                    std::vector<ReqStepShare> &out) const
{
    const ReqTraceRecorder *rt = config_.reqTrace;
    if (rt == nullptr)
        return;
    for (const BatchEntry &entry : plan.entries) {
        if (!LAER_REQ_SAMPLED(rt, entry.requestId))
            continue;
        // Pre-commit state: prefill progress, the restoring flag and
        // an unset first-token time still describe the step being
        // priced, not its outcome.
        const Request *r = engine.batcher().find(entry.requestId);
        if (r == nullptr)
            continue;
        ReqStepShare share;
        share.requestId = entry.requestId;
        share.pool = pool_index;
        share.start = result.start;
        share.duration = result.duration;
        share.retunePause = result.migration;
        share.swapOverhead = result.swapTime;
        if (entry.prefillTokens > 0)
            share.computeAs = r->restoring
                                  ? AttrComponent::PreemptRecovery
                                  : AttrComponent::PrefillCompute;
        else
            share.computeAs = AttrComponent::DecodeResidency;
        share.firstToken =
            entry.prefillTokens > 0 && r->firstTokenTime < 0.0 &&
            r->prefillDone + entry.prefillTokens >= r->prefillTarget();
        out.push_back(share);
    }
}

void
ServingSimulator::replayStepTrace(
    const std::vector<PreemptionRecord> &preempted,
    Seconds preempt_time, const std::vector<ReqStepShare> &shares)
{
    ReqTraceRecorder *rt = config_.reqTrace;
    if (rt == nullptr)
        return;
    const bool swap =
        config_.batcher.preemptionMode == PreemptionMode::Swap;
    for (const PreemptionRecord &p : preempted)
        if (LAER_REQ_SAMPLED(rt, p.requestId))
            LAER_REQ_EVENT(rt,
                           onPreempt(p.requestId, preempt_time, swap));
    for (const ReqStepShare &share : shares)
        LAER_REQ_EVENT(rt, onStep(share));
}

void
ServingSimulator::retireSampledRequest(const Request &done)
{
    ReqTraceRecorder *rt = config_.reqTrace;
    if (!LAER_REQ_SAMPLED(rt, done.id))
        return;
    ReqRetireInfo info;
    info.id = done.id;
    info.firstTokenTime = done.firstTokenTime;
    info.finishTime = done.finishTime;
    info.decodeTokens = done.decodeTokens;
    info.preemptions = done.preemptions;
    info.sloTtft = config_.sloTtft;
    ReqTraceRecorder::RetireContext ctx;
    ctx.trace = config_.trace;
    ctx.trackPrefix = obsPrefix();
    std::vector<int> pool_tracks;
    if (config_.trace != nullptr) {
        for (std::size_t i = 0; i < engines_.size(); ++i)
            pool_tracks.push_back(poolTrack(i));
        ctx.poolTracks = &pool_tracks;
    }
    const RetiredAttribution attr = rt->retire(info, ctx);
    metrics_.recordAttribution(done.sloClass, attr.e2e);
}

void
ServingSimulator::harvestFinished(int pool_index)
{
    const bool disagg = config_.policy == ServingPolicy::Disaggregated;
    for (Request r : engines_[pool_index]->takeFinished()) {
        if (!disagg || pool_index == 1) {
            recordCompletion(r);
            continue;
        }
        // Prefill pool: the "finished" request is the prefill-only
        // copy — its prefill completed and the first token is out.
        const auto it = decodeTargets_.find(r.id);
        LAER_ASSERT(it != decodeTargets_.end(),
                    "prefill pool finished unknown request " << r.id);
        const TokenCount decode_target = it->second;
        decodeTargets_.erase(it);
        if (decode_target <= 1) {
            // Single-token request: nothing left to decode, and no KV
            // to move.
            recordCompletion(r);
            continue;
        }
        if (faultsEnabled_ && linkDown_) {
            // The boundary link is down: the handover aborts before
            // touching the wire and the context takes the retry path
            // (its KV was released at the pool boundary, so the retry
            // recomputes the prefill).
            // killed_at is the prefill finish: the harvest runs at
            // the wake that launched the finishing chunk, so now_
            // still sits at the chunk start — inside the step span
            // already attributed as compute.
            const Seconds finished_at = r.finishTime;
            abortTransfer(std::move(r), decode_target, finished_at);
            continue;
        }
        // Hand the context over: its KV crosses the inter-pool links.
        const Bytes bytes =
            r.contextLength() * kvBytesPerToken(config_.model);
        Seconds wire = kvTransferTime(
            cluster_, engines_[0]->slice(), engines_[1]->slice(), bytes);
        if (faultsEnabled_ && linkFactor_ != 1.0)
            wire *= linkFactor_; // degraded link: stretched wire time
        LAER_TRACE_SPAN(config_.trace, kvTrack(), "kv_transfer",
                        "serve", r.finishTime, wire,
                        {TraceArg{"id", r.id}, TraceArg{"bytes", bytes},
                         TraceArg{"context", r.contextLength()}});
        if (LAER_REQ_SAMPLED(config_.reqTrace, r.id))
            LAER_REQ_EVENT(config_.reqTrace,
                           onKvTransfer(r.id, r.finishTime, wire));
        PendingMigration m;
        m.readyAt = r.finishTime + wire;
        r.decodeTokens = decode_target;
        r.finishTime = -1.0;
        m.request = r;
        // Keep the queue ordered by arrival at the decode pool:
        // per-context wire times differ, so a short context finishing
        // later can still land first. Ties keep push order (stable).
        migrations_.insert(
            std::upper_bound(migrations_.begin(), migrations_.end(),
                             m,
                             [](const PendingMigration &a,
                                const PendingMigration &b) {
                                 return a.readyAt < b.readyAt;
                             }),
            m);
        kvTransferBytes_ += bytes;
        kvTransferSeconds_ += wire;
        ++migrated_;
    }
    scheduleMigrationWake();
}

void
ServingSimulator::pumpMigrations()
{
    if (config_.policy != ServingPolicy::Disaggregated)
        return;
    ServingEngine &decode = *engines_[1];
    const bool decode_open =
        decode.state() == EngineState::Active ||
        decode.state() == EngineState::Loading;
    while (decode_open && !migrations_.empty()) {
        const PendingMigration &m = migrations_.front();
        if (m.readyAt > now_)
            break;
        if (!decode.batcher().canAdmitContext(
                m.request.contextLength()))
            break; // decode pool full: the context waits at the door
        transferStallSeconds_ += now_ - m.readyAt;
        if (LAER_REQ_SAMPLED(config_.reqTrace, m.request.id))
            LAER_REQ_EVENT(config_.reqTrace,
                           onTransferStall(m.request.id, m.readyAt,
                                           now_));
        decode.enqueue(m.request);
        migrations_.pop_front();
        scheduleEngineWake(1);
    }
    scheduleMigrationWake();
    // Back-pressure: a transferred context stuck at the decode pool's
    // door closes prefill admission until the decode pool drains. A
    // draining prefill pool keeps its admission shut regardless.
    const bool blocked =
        !migrations_.empty() && migrations_.front().readyAt <= now_;
    if (engines_[0]->state() == EngineState::Active ||
        engines_[0]->state() == EngineState::Loading)
        engines_[0]->batcher().setAdmissionPaused(blocked);
}

// ---- fault injection (src/fault/) ------------------------------------
// Every entry point below begins behind faultsEnabled_ (or is only
// reachable from code that is), so a fault-free run never executes a
// fault instruction and stays byte-for-byte with its history — the
// golden gate pins that.

int
ServingSimulator::faultTrack()
{
    return config_.trace->track(obsPrefix() + "faults");
}

int
ServingSimulator::deadReplicas() const
{
    int dead = 0;
    for (std::size_t i = 0; i < engines_.size(); ++i)
        if (faultDownSince_[i] >= 0.0 &&
            engines_[i]->state() == EngineState::Stopped)
            ++dead;
    return dead;
}

bool
ServingSimulator::faultActive() const
{
    if (linkDown_ || linkFactor_ != 1.0)
        return true;
    for (std::size_t i = 0; i < engines_.size(); ++i)
        if (faultDownSince_[i] >= 0.0 ||
            stragglerFactor_[i] != 1.0 || deadDevices_[i] > 0)
            return true;
    return false;
}

void
ServingSimulator::updateDegraded()
{
    // Degraded time is the union of all fault conditions: the window
    // opens at the first active fault and closes when the last one
    // clears (a repaired replica counts degraded until Active again).
    const bool degraded = faultActive();
    if (degraded && degradedSince_ < 0.0) {
        degradedSince_ = now_;
        goodTokensAtDegradeStart_ = metrics_.goodTokens();
    } else if (!degraded && degradedSince_ >= 0.0) {
        degradedSeconds_ += now_ - degradedSince_;
        degradedGoodTokens_ +=
            metrics_.goodTokens() - goodTokensAtDegradeStart_;
        degradedSince_ = -1.0;
    }
}

void
ServingSimulator::applyFaults()
{
    while (nextFault_ < faultPlan_.size() &&
           faultPlan_[nextFault_].time <= now_)
        applyFaultEvent(faultPlan_[nextFault_++]);
    // Deferred fail-stops land at the victim's step boundary: the
    // in-flight step finishes (its results are real work), THEN the
    // engine dies. stepOnce() runs this before runDueEngines(), so a
    // due kill always lands before the victim could start another
    // step.
    for (std::size_t i = 0; i < engines_.size(); ++i)
        if (pendingKill_[i] && freeAt_[i] <= now_)
            applyKill(i);
    scheduleFaultWake();
}

void
ServingSimulator::applyFaultEvent(const FaultEvent &event)
{
    const std::size_t target = static_cast<std::size_t>(std::min(
        std::max(event.target, 0),
        static_cast<int>(engines_.size()) - 1));
    const bool disagg =
        config_.policy == ServingPolicy::Disaggregated;
    // No-op events (killing a corpse, healing a healthy link, ...)
    // are dropped without counting: the timeline records what was
    // APPLIED, and idempotence keeps seeded storms well-defined.
    switch (event.kind) {
    case FaultKind::ReplicaFail: {
        const EngineState state = engines_[target]->state();
        if (state == EngineState::Stopped || pendingKill_[target])
            return;
        ++faultsInjected_;
        faultTimeline_.push_back({now_, event.kind,
                                  static_cast<int>(target),
                                  event.magnitude});
        faultDownSince_[target] = now_;
        LAER_TRACE_INSTANT(config_.trace, faultTrack(),
                           "replica_fail", "fault", now_,
                           {TraceArg{"pool",
                                     static_cast<int>(target)}});
        pendingKill_[target] = 1;
        if (state == EngineState::Loading ||
            state == EngineState::Draining)
            freeAt_[target] = now_; // no step in flight: die now
        if (freeAt_[target] <= now_)
            applyKill(target);
        updateDegraded();
        break;
    }
    case FaultKind::ReplicaRepair:
        // Only a fault-killed, already-dead slot rebuilds. A repair
        // scheduled inside the victim's final step (the kill still
        // deferred) is lost — a later repair or the autoscaler
        // rebuilds the slot instead.
        if (engines_[target]->state() != EngineState::Stopped ||
            faultDownSince_[target] < 0.0)
            return;
        faultTimeline_.push_back({now_, event.kind,
                                  static_cast<int>(target),
                                  event.magnitude});
        applyRepair(target);
        break;
    case FaultKind::LinkDown: {
        if (!disagg || linkDown_)
            return;
        ++faultsInjected_;
        faultTimeline_.push_back({now_, event.kind, 0, 1.0});
        linkDown_ = true;
        LAER_TRACE_INSTANT(config_.trace, faultTrack(), "link_down",
                           "fault", now_,
                           {TraceArg{"in_flight",
                                     static_cast<int>(
                                         migrations_.size())}});
        // Transfers die on the wire: abort-and-retry each one.
        std::deque<PendingMigration> inflight;
        inflight.swap(migrations_);
        for (PendingMigration &m : inflight) {
            // The full wire span was attributed at harvest, so the
            // retry dead time starts at the wire's would-be end (the
            // backoff usually expires earlier; the wait clamps to 0).
            const TokenCount decode_target = m.request.decodeTokens;
            abortTransfer(std::move(m.request), decode_target,
                          m.readyAt);
        }
        scheduleMigrationWake();
        updateDegraded();
        break;
    }
    case FaultKind::LinkUp:
        if (!disagg || (!linkDown_ && linkFactor_ == 1.0))
            return;
        faultTimeline_.push_back({now_, event.kind, 0, 1.0});
        linkDown_ = false;
        linkFactor_ = 1.0;
        LAER_TRACE_INSTANT(config_.trace, faultTrack(), "link_up",
                           "fault", now_, {TraceArg{"factor", 1.0}});
        updateDegraded();
        break;
    case FaultKind::LinkDegrade:
        if (!disagg || event.magnitude <= 0.0 || linkDown_ ||
            linkFactor_ == event.magnitude)
            return;
        ++faultsInjected_;
        faultTimeline_.push_back({now_, event.kind, 0,
                                  event.magnitude});
        linkFactor_ = event.magnitude;
        LAER_TRACE_INSTANT(config_.trace, faultTrack(),
                           "link_degrade", "fault", now_,
                           {TraceArg{"factor", event.magnitude}});
        updateDegraded();
        break;
    case FaultKind::StragglerStart:
        if (engines_[target]->state() == EngineState::Stopped ||
            event.magnitude <= 0.0 ||
            stragglerFactor_[target] == event.magnitude)
            return;
        ++faultsInjected_;
        faultTimeline_.push_back({now_, event.kind,
                                  static_cast<int>(target),
                                  event.magnitude});
        stragglerFactor_[target] = event.magnitude;
        LAER_TRACE_INSTANT(config_.trace, faultTrack(), "straggler",
                           "fault", now_,
                           {TraceArg{"pool",
                                     static_cast<int>(target)},
                            TraceArg{"factor", event.magnitude}});
        updateDegraded();
        break;
    case FaultKind::StragglerEnd:
        if (stragglerFactor_[target] == 1.0)
            return;
        faultTimeline_.push_back({now_, event.kind,
                                  static_cast<int>(target), 1.0});
        stragglerFactor_[target] = 1.0;
        LAER_TRACE_INSTANT(config_.trace, faultTrack(),
                           "straggler_end", "fault", now_,
                           {TraceArg{"pool",
                                     static_cast<int>(target)}});
        updateDegraded();
        break;
    case FaultKind::DeviceFail: {
        if (engines_[target]->state() == EngineState::Stopped)
            return;
        const int total = slices_[target].numDevices();
        const int dead = std::min(
            total - 1,
            deadDevices_[target] +
                std::max(1, static_cast<int>(event.magnitude)));
        if (dead == deadDevices_[target])
            return; // the slice keeps at least one survivor
        ++faultsInjected_;
        faultTimeline_.push_back({now_, event.kind,
                                  static_cast<int>(target),
                                  static_cast<double>(dead)});
        deadDevices_[target] = dead;
        LAER_TRACE_INSTANT(config_.trace, faultTrack(),
                           "device_fail", "fault", now_,
                           {TraceArg{"pool",
                                     static_cast<int>(target)},
                            TraceArg{"dead", dead}});
        resizePoolKv(target);
        updateDegraded();
        break;
    }
    case FaultKind::DeviceRepair:
        if (deadDevices_[target] == 0)
            return;
        faultTimeline_.push_back({now_, event.kind,
                                  static_cast<int>(target), 0.0});
        deadDevices_[target] = 0;
        LAER_TRACE_INSTANT(config_.trace, faultTrack(),
                           "device_repair", "fault", now_,
                           {TraceArg{"pool",
                                     static_cast<int>(target)}});
        resizePoolKv(target);
        updateDegraded();
        break;
    }
}

void
ServingSimulator::resizePoolKv(std::size_t i)
{
    // Graceful degradation: the pool's KV budget shrinks to the
    // survivors' share, admission shrinks with it, and requests whose
    // full context can no longer EVER fit are failed rather than
    // wedged (byte-accounting runs only; slot-mode pools degrade
    // through the replica/straggler paths instead).
    const int total = slices_[i].numDevices();
    const Bytes full = poolKvBudgetFor(total);
    if (full == 0 || engines_[i]->state() == EngineState::Stopped)
        return;
    const Bytes budget =
        full * static_cast<Bytes>(total - deadDevices_[i]) /
        static_cast<Bytes>(total);
    std::vector<Request> unservable =
        engines_[i]->resizeKvBudget(budget);
    for (const Request &r : unservable)
        failRequest(r);
    scheduleEngineWake(i);
}

void
ServingSimulator::applyKill(std::size_t i)
{
    pendingKill_[i] = 0;
    // The dying engine's completed work is real (its last step
    // committed at the step boundary we deferred to); only the live
    // queue is lost.
    harvestFinished(static_cast<int>(i));
    accruePower(now_);
    std::vector<Request> evicted = engines_[i]->drain();
    emitRetuneSpans(i);
    LAER_TRACE_INSTANT(config_.trace, faultTrack(), "replica_dead",
                       "fault", now_,
                       {TraceArg{"pool", static_cast<int>(i)},
                        TraceArg{"evicted",
                                 static_cast<int>(evicted.size())}});
    // drain() already gave every eviction the KV-loss recompute
    // disposition (restoring = decodeDone > 0, prefill progress
    // cleared); the retry queue re-admits them after backoff.
    for (Request &r : evicted)
        scheduleRetry(std::move(r), now_);
    scheduleEngineWake(i); // cancels: a dead engine never wakes
}

void
ServingSimulator::applyRepair(std::size_t i)
{
    // The rebuild is the requestReplicas() spin-up idiom: a fresh
    // engine behind its model-load delay, priced over the host link.
    // A rebuilt slice comes back whole: stragglers and dead devices
    // do not survive the reimage.
    accruePower(now_);
    retireEngineCounters(i);
    deadDevices_[i] = 0;
    stragglerFactor_[i] = 1.0;
    engines_[i] = std::make_unique<ServingEngine>(
        slices_[i], engineConfigFor(slices_[i], static_cast<int>(i)),
        EngineState::Loading);
    const Seconds delay = loadDelayFor(slices_[i]);
    freeAt_[i] = now_ + delay;
    scheduleEngineWake(i);
    ScalingEvent event;
    event.requested = now_;
    event.applied = now_ + delay;
    event.action = "repair";
    event.before = activeReplicas();
    event.after = event.before + 1;
    event.loadDelay = delay;
    scalingEvents_.push_back(event);
    emitScalingEvent(event);
}

void
ServingSimulator::abortTransfer(Request request,
                                TokenCount decode_target,
                                Seconds killed_at)
{
    // A dead boundary link cut this context's handover. Its KV was
    // released at the pool boundary, so the retry re-runs the prefill
    // (recompute disposition) back in the prefill pool and re-earns
    // the handover; the decode target is re-parked until then.
    ++transfersAborted_;
    LAER_TRACE_INSTANT(config_.trace, faultTrack(), "transfer_abort",
                       "fault", now_,
                       {TraceArg{"id", request.id},
                        TraceArg{"context",
                                 request.contextLength()}});
    decodeTargets_[request.id] =
        std::max<TokenCount>(decode_target, 2);
    request.decodeTokens = 1;
    request.restoring = request.decodeDone > 0;
    request.prefillDone = 0;
    request.finishTime = -1.0;
    scheduleRetry(std::move(request), killed_at);
}

void
ServingSimulator::scheduleRetry(Request request, Seconds killed_at)
{
    ++request.retries;
    if (request.retries > config_.faults.retryBudget) {
        failRequest(request);
        return;
    }
    ++requestsRetried_;
    // Capped exponential backoff: attempt k waits
    // min(cap, base * 2^(k-1)).
    Seconds backoff = config_.faults.backoffBase;
    for (int k = 1;
         k < request.retries && backoff < config_.faults.backoffCap;
         ++k)
        backoff *= 2.0;
    backoff = std::min(backoff, config_.faults.backoffCap);
    LAER_TRACE_INSTANT(config_.trace, faultTrack(), "retry", "fault",
                       now_,
                       {TraceArg{"id", request.id},
                        TraceArg{"attempt", request.retries},
                        TraceArg{"backoff_s", backoff}});
    PendingRetry retry;
    retry.killedAt = killed_at;
    retry.readyAt = now_ + backoff;
    retry.request = std::move(request);
    // Sorted by readyAt; ties keep insertion order (stable), so the
    // walk order is a pure function of the fault history.
    retryQueue_.insert(
        std::upper_bound(retryQueue_.begin(), retryQueue_.end(),
                         retry,
                         [](const PendingRetry &a,
                            const PendingRetry &b) {
                             return a.readyAt < b.readyAt;
                         }),
        std::move(retry));
    scheduleRetryWake();
}

void
ServingSimulator::failRequest(const Request &request)
{
    // Failed, not hung: the request leaves the system explicitly and
    // the conservation identity counts it
    // (offered == completed + in-flight + retrying + failed).
    ++requestsFailed_;
    if (request.sloClass >= 0 &&
        static_cast<std::size_t>(request.sloClass) <
            failedByClass_.size())
        ++failedByClass_[static_cast<std::size_t>(request.sloClass)];
    decodeTargets_.erase(request.id);
    LAER_TRACE_INSTANT(config_.trace, faultTrack(), "request_failed",
                       "fault", now_,
                       {TraceArg{"id", request.id},
                        TraceArg{"class", request.sloClass},
                        TraceArg{"retries", request.retries}});
    if (LAER_REQ_SAMPLED(config_.reqTrace, request.id))
        LAER_REQ_EVENT(config_.reqTrace,
                       onFailed(request.id, now_));
}

int
ServingSimulator::pickRetryTarget(const Request &request) const
{
    if (config_.policy == ServingPolicy::Disaggregated) {
        // Phase affinity: a context still owed its prefill goes back
        // to the prefill pool, a decode-resident one to the decode
        // pool. While the boundary link is down a prefill-side retry
        // holds — re-running its prefill would only reach the same
        // dead boundary and burn the retry budget; the LinkUp event
        // is the revival it waits on.
        const int pool =
            decodeTargets_.count(request.id) != 0 ? 0 : 1;
        if (pool == 0 && linkDown_)
            return -1;
        const EngineState state = engines_[pool]->state();
        return state == EngineState::Active ||
                       state == EngineState::Loading
                   ? pool
                   : -1;
    }
    int best = -1;
    int best_load = 0;
    for (std::size_t i = 0; i < engines_.size(); ++i) {
        const EngineState state = engines_[i]->state();
        if (state != EngineState::Active &&
            state != EngineState::Loading)
            continue;
        const int load = engines_[i]->batcher().waitingCount() +
                         engines_[i]->batcher().runningCount();
        if (best < 0 || load < best_load) {
            best = static_cast<int>(i);
            best_load = load;
        }
    }
    return best;
}

bool
ServingSimulator::reviveExpected() const
{
    for (const auto &engine : engines_)
        if (engine->state() == EngineState::Loading)
            return true;
    for (std::size_t e = nextFault_; e < faultPlan_.size(); ++e) {
        if (faultPlan_[e].kind == FaultKind::ReplicaRepair)
            return true;
        if (linkDown_ && faultPlan_[e].kind == FaultKind::LinkUp)
            return true;
    }
    return false;
}

void
ServingSimulator::pumpRetries()
{
    while (!retryQueue_.empty() &&
           retryQueue_.front().readyAt <= now_) {
        const int target =
            pickRetryTarget(retryQueue_.front().request);
        if (target < 0) {
            if (reviveExpected())
                break; // a revival is coming: hold the front
            // Nothing will ever serve this request again: fail it
            // now rather than hang the drain.
            PendingRetry retry = std::move(retryQueue_.front());
            retryQueue_.pop_front();
            failRequest(retry.request);
            continue;
        }
        PendingRetry retry = std::move(retryQueue_.front());
        retryQueue_.pop_front();
        if (LAER_REQ_SAMPLED(config_.reqTrace, retry.request.id))
            LAER_REQ_EVENT(config_.reqTrace,
                           onRetryWait(retry.request.id,
                                       retry.killedAt, now_));
        // Re-admission at class FRONT: the retry already waited out
        // its failure and must not queue behind the backlog again.
        engines_[static_cast<std::size_t>(target)]->enqueueFront(
            retry.request);
        scheduleEngineWake(static_cast<std::size_t>(target));
    }
    scheduleRetryWake();
}

void
ServingSimulator::scheduleFaultWake()
{
    Seconds t = kNever;
    if (nextFault_ < faultPlan_.size() &&
        faultPlan_[nextFault_].time > now_)
        t = faultPlan_[nextFault_].time;
    for (std::size_t i = 0; i < engines_.size(); ++i)
        if (pendingKill_[i] && freeAt_[i] > now_)
            t = std::min(t, freeAt_[i]);
    if (t == kNever) {
        calendar_.cancel(faultWake_);
        return;
    }
    if (calendar_.scheduled(faultWake_) &&
        calendar_.timeOf(faultWake_) == t)
        return;
    calendar_.schedule(faultWake_, t);
}

void
ServingSimulator::scheduleRetryWake()
{
    // A due-but-blocked retry front is not an event (the arrival-door
    // idiom): pumpRetries re-evaluates it each step, and the revival
    // it waits on has its own wake.
    if (retryQueue_.empty() || retryQueue_.front().readyAt <= now_) {
        calendar_.cancel(retryWake_);
        return;
    }
    const Seconds ready = retryQueue_.front().readyAt;
    if (calendar_.scheduled(retryWake_) &&
        calendar_.timeOf(retryWake_) == ready)
        return;
    calendar_.schedule(retryWake_, ready);
}

bool
ServingSimulator::runDueEngines()
{
    const bool shared_layout =
        config_.policy == ServingPolicy::Disaggregated &&
        config_.disagg.sharedLayout;
    bool ran = false;
    for (std::size_t i = 0; i < engines_.size(); ++i) {
        if (engines_[i]->state() != EngineState::Active)
            continue; // loading, draining or parked
        if (freeAt_[i] > now_ || !engines_[i]->hasWork())
            continue;
        ServingEngine &engine = *engines_[i];
        const BatchPlan plan = engine.planStep();
        // Planning is where KV preemption happens; account for it even
        // when the plan comes back empty.
        const std::vector<PreemptionRecord> preempted =
            engine.takePreempted();
        for (const PreemptionRecord &p : preempted) {
            metrics_.recordPreemption(p.sloClass);
            LAER_TRACE_INSTANT(config_.trace, poolTrack(i), "preempt",
                               "serve", now_,
                               {TraceArg{"class", p.sloClass},
                                TraceArg{"id", p.requestId}});
        }
        replayStepTrace(preempted, now_, {});
        poolStats_[i].preemptions +=
            static_cast<std::int64_t>(preempted.size());
        if (plan.empty()) {
            // Admission paused by back-pressure with nothing running:
            // the pool waits for the decode side to drain.
            LAER_ASSERT(engine.batcher().admissionPaused(),
                        "engine idle while holding live requests");
            scheduleEngineWake(i);
            continue;
        }

        ServingStepResult res;
        if (config_.selfProfile) {
            const auto exec_start = std::chrono::steady_clock::now();
            res = engine.executeStep(plan, now_);
            profExecMs_ +=
                std::chrono::duration<double, std::milli>(
                    std::chrono::steady_clock::now() - exec_start)
                    .count();
        } else {
            res = engine.executeStep(plan, now_);
        }
        if (faultsEnabled_ && stragglerFactor_[i] != 1.0)
            // A transient straggler stretches the whole step on the
            // timeline; the token counts are untouched.
            res.duration *= stragglerFactor_[i];
        res.pool = static_cast<int>(i);
        res.preemptions = static_cast<int>(preempted.size());
        if (engine.batcher().kvEnabled()) {
            // Post-plan reservation peak of this step.
            res.kvUtilization = engine.batcher().kvUtilization();
            metrics_.recordKvUtilization(res.kvUtilization);
            poolStats_[i].kvUtil.add(res.kvUtilization);
        }
        std::vector<ReqStepShare> shares;
        captureStepShares(engine, plan, res, static_cast<int>(i),
                          shares);
        freeAt_[i] = now_ + res.duration;
        engine.commitStep(plan, freeAt_[i]);
        replayStepTrace({}, now_, shares);
        ++poolStats_[i].steps;
        if (config_.trace != nullptr) {
            const char *kind =
                res.prefill > 0 && res.decode > 0 ? "mixed_step"
                : res.prefill > 0                 ? "prefill_step"
                                                  : "decode_step";
            config_.trace->span(
                poolTrack(i), kind, "serve", now_, res.duration,
                {TraceArg{"tokens", res.tokens},
                 TraceArg{"prefill", res.prefill},
                 TraceArg{"decode", res.decode},
                 TraceArg{"kv_util", res.kvUtilization},
                 TraceArg{"retuned", res.retuned}});
        }
        if (config_.metricsRegistry != nullptr)
            config_.metricsRegistry->histogram("serve.step_time_s")
                .observe(res.duration);
        if (res.retuned)
            emitRetuneSpans(i);
        harvestFinished(static_cast<int>(i));
        scheduleEngineWake(i);

        if (shared_layout) {
            // The decode pool (leader) tunes from combined traffic;
            // the prefill pool adopts each fresh layout.
            if (i == 1 && res.retuned)
                engines_[0]->setLayouts(engines_[1]->layouts());
            if (i == 0)
                engines_[1]->addExternalRouting(
                    engines_[0]->lastRouting());
        }
        steps_.push_back(res);
        ran = true;
    }
    return ran;
}

void
ServingSimulator::scheduleEngineWake(std::size_t i)
{
    // Busy engines with work wake at their finish; Loading and
    // Draining engines wake regardless — the ready/idle moment is
    // itself the event the control plane is waiting on. Past times
    // are not events: the pumps re-evaluate every source each step,
    // so a due-but-unserviceable wake never wedges the clock.
    const EngineState state = engines_[i]->state();
    const bool wakes = (engines_[i]->hasWork() ||
                        state == EngineState::Loading ||
                        state == EngineState::Draining) &&
                       freeAt_[i] > now_;
    const EventCalendar::Handle h = engineWake_[i];
    if (!wakes) {
        calendar_.cancel(h);
        return;
    }
    if (calendar_.scheduled(h) && calendar_.timeOf(h) == freeAt_[i])
        return; // unchanged: keep the live heap entry
    calendar_.schedule(h, freeAt_[i]);
}

void
ServingSimulator::scheduleArrivalWake()
{
    // A due-but-held arrival (front door closed during a
    // reconfiguration) is not a future event; the drain/load wake-ups
    // drive the clock until the door reopens.
    if (!lookaheadValid_ || lookahead_.arrival <= now_) {
        calendar_.cancel(arrivalWake_);
        return;
    }
    if (calendar_.scheduled(arrivalWake_) &&
        calendar_.timeOf(arrivalWake_) == lookahead_.arrival)
        return;
    calendar_.schedule(arrivalWake_, lookahead_.arrival);
}

void
ServingSimulator::scheduleMigrationWake()
{
    if (migrations_.empty() || migrations_.front().readyAt <= now_) {
        calendar_.cancel(migrationWake_);
        return;
    }
    const Seconds ready = migrations_.front().readyAt;
    if (calendar_.scheduled(migrationWake_) &&
        calendar_.timeOf(migrationWake_) == ready)
        return;
    calendar_.schedule(migrationWake_, ready);
}

Seconds
ServingSimulator::legacyNextEventTime() const
{
    Seconds t = kNever;
    for (std::size_t i = 0; i < engines_.size(); ++i) {
        const EngineState state = engines_[i]->state();
        const bool wakes = engines_[i]->hasWork() ||
                           state == EngineState::Loading ||
                           state == EngineState::Draining;
        if (wakes && freeAt_[i] > now_)
            t = std::min(t, freeAt_[i]);
    }
    if (lookaheadValid_ && lookahead_.arrival > now_)
        t = std::min(t, lookahead_.arrival);
    if (!migrations_.empty() && migrations_.front().readyAt > now_)
        t = std::min(t, migrations_.front().readyAt);
    if (faultsEnabled_) {
        // Mirror of scheduleFaultWake()/scheduleRetryWake(): the next
        // scripted event, any deferred kill boundary, and the retry
        // front. Due-but-blocked retries are not events (pumpRetries
        // re-evaluates them; a revival's own wake drives the clock).
        if (nextFault_ < faultPlan_.size() &&
            faultPlan_[nextFault_].time > now_)
            t = std::min(t, faultPlan_[nextFault_].time);
        for (std::size_t i = 0; i < engines_.size(); ++i)
            if (pendingKill_[i] && freeAt_[i] > now_)
                t = std::min(t, freeAt_[i]);
        if (!retryQueue_.empty() &&
            retryQueue_.front().readyAt > now_)
            t = std::min(t, retryQueue_.front().readyAt);
    }
    return t;
}

Seconds
ServingSimulator::nextEventTime()
{
    const Seconds t = calendar_.peekTime();
#ifndef NDEBUG
    // Debug oracle: the calendar must agree with the exhaustive scan
    // it replaced. Release builds skip the O(engines) walk — that
    // walk being gone is the point of the calendar.
    LAER_ASSERT(t == legacyNextEventTime(),
                "event calendar disagrees with the legacy event scan");
#endif
    return t;
}

void
ServingSimulator::setBarrier(Seconds t)
{
    LAER_CHECK(t > now_, "barrier " << t << " is not in the future of "
                                    << now_);
    barrier_ = t;
}

bool
ServingSimulator::step()
{
    maybeSnapshot();
    if (!config_.selfProfile)
        return desParallel_ ? stepWindow() : stepOnce();
    const auto step_start = std::chrono::steady_clock::now();
    const bool more = desParallel_ ? stepWindow() : stepOnce();
    profStepMs_ += std::chrono::duration<double, std::milli>(
                       std::chrono::steady_clock::now() - step_start)
                       .count();
    return more;
}

bool
ServingSimulator::stepOnce()
{
    if (faultsEnabled_)
        applyFaults();
    applyReconfig();
    pumpArrivals();
    if (faultsEnabled_)
        pumpRetries();
    pumpMigrations();
    if (runDueEngines())
        return true;
    const Seconds t = nextEventTime();
    if (t == kNever) {
        // Fully drained — nothing in any pool or in flight between
        // them.
        for (const auto &engine : engines_)
            LAER_ASSERT(!engine->hasWork(),
                        "run ended while a pool holds live requests");
        LAER_ASSERT(migrations_.empty(),
                    "run ended with contexts in flight");
        LAER_ASSERT(!pending_.active,
                    "run ended mid-reconfiguration");
        LAER_ASSERT(retryQueue_.empty(),
                    "run ended with retries parked");
        return false;
    }
    LAER_ASSERT(t > now_, "simulation failed to advance");
    now_ = t;
    return true;
}

// ---- windowed event core (ServingConfig::desParallel) ----------------
// Between barriers the engines are share-nothing partitions: requests
// never move engine-to-engine outside a reconfiguration, and arrivals
// are pre-binned before the fan-out. Each worker advances one engine's
// private state (batcher, KV pool, RNG stream — disjoint since PR 5)
// and buffers everything it would have emitted; the merge replays the
// buffers in the order a serial sweep would have produced. Any thread
// count therefore yields bit-identical results (difftest lane
// serial-vs-parallel-des).

bool
ServingSimulator::stepWindow()
{
    // Reconfigurations couple the engines (drain re-homing, pool
    // rebuilds, held queues), so the windowed core falls back to the
    // per-event serial path until the topology settles. The fallback
    // is itself deterministic, preserving thread-count equivalence.
    // Fault plans couple them the same way (retries hop engines, kills
    // re-home), so a faulted run stays on the serial core throughout.
    if (faultsEnabled_ || reconfigPending())
        return stepOnce();

    // The window runs to the next control barrier or snapshot
    // boundary, whichever comes first. Both are time grids, not
    // calendar events: the serial core's clock lands ON events, the
    // windowed core's clock walks the grid.
    Seconds window_end = barrier_;
    if (config_.metricsRegistry != nullptr &&
        config_.snapshotInterval > 0.0)
        window_end = std::min(window_end, nextSnapshot_);
    LAER_ASSERT(window_end > now_, "window end not in the future");

    std::vector<std::vector<Request>> bins =
        binWindowArrivals(window_end);

    bool busy = lookaheadValid_ || !migrations_.empty();
    for (std::size_t i = 0; i < engines_.size() && !busy; ++i)
        busy = engines_[i]->hasWork() ||
               engines_[i]->state() == EngineState::Loading ||
               !bins[i].empty();
    if (!busy) {
        LAER_ASSERT(offeringClosed_,
                    "windowed run idle with the offering open");
        LAER_ASSERT(!pending_.active, "run ended mid-reconfiguration");
        return false;
    }

    std::vector<WindowBuffer> buffers(engines_.size());
    const auto body = [&](int i) {
        runEngineWindow(static_cast<std::size_t>(i), window_end,
                        bins[static_cast<std::size_t>(i)],
                        buffers[static_cast<std::size_t>(i)]);
    };
    const auto fanout_start = std::chrono::steady_clock::now();
    if (threadPool_ != nullptr)
        threadPool_->parallelFor(static_cast<int>(engines_.size()),
                                 body);
    else
        for (int i = 0; i < static_cast<int>(engines_.size()); ++i)
            body(i);
    const auto fanout_end = std::chrono::steady_clock::now();
    const double fanout_ms =
        std::chrono::duration<double, std::milli>(fanout_end -
                                                  fanout_start)
            .count();
    mergeWindowBuffers(buffers);
    const double merge_ms =
        std::chrono::duration<double, std::milli>(
            std::chrono::steady_clock::now() - fanout_end)
            .count();

    // Windowed-core self-profile (ROADMAP open item 1: measure the
    // fan-out before tuning it). Wall clock flows only INTO these
    // accumulators — never back into simulated state — so the
    // attached/unattached runs still price identically.
    ++descoreWindows_;
    descoreFanoutMs_ += fanout_ms;
    descoreMergeMs_ += merge_ms;
    std::int64_t window_steps = 0;
    for (const WindowBuffer &buf : buffers) {
        window_steps += static_cast<std::int64_t>(buf.steps.size());
        descoreWorkerBusyMs_ += buf.wallMs;
        descoreBarrierWaitMs_ += std::max(0.0, fanout_ms - buf.wallMs);
    }
    descoreSteps_ += window_steps;
    if (config_.trace != nullptr) {
        // Spans land on the simulated timeline (the window interval);
        // the wall-time measurements ride along as args, the retune
        // span idiom.
        Seconds span_end = window_end;
        if (span_end == kNever) {
            span_end = now_;
            for (const WindowBuffer &buf : buffers)
                span_end = std::max(span_end, buf.freeAt);
        }
        const Seconds dur = std::max(0.0, span_end - now_);
        config_.trace->span(
            config_.trace->track(obsPrefix() + "descore"), "window",
            "descore", now_, dur,
            {TraceArg{"steps", static_cast<int>(window_steps)},
             TraceArg{"fanout_ms", fanout_ms},
             TraceArg{"merge_ms", merge_ms}});
        for (std::size_t i = 0; i < buffers.size(); ++i) {
            if (buffers[i].steps.empty())
                continue;
            config_.trace->span(
                config_.trace->track(obsPrefix() + slices_[i].name +
                                     "/window"),
                "engine_window", "descore", now_, dur,
                {TraceArg{"steps",
                          static_cast<int>(buffers[i].steps.size())},
                 TraceArg{"busy_ms", buffers[i].wallMs},
                 TraceArg{"barrier_wait_ms",
                          std::max(0.0,
                                   fanout_ms - buffers[i].wallMs)}});
        }
    }

    if (window_end == kNever)
        // No barrier, no snapshot grid: the fan-out just ran the whole
        // run to the drain. finish() raises the clock to the last
        // engine's finish.
        return false;
    now_ = window_end;
    return true;
}

std::vector<std::vector<Request>>
ServingSimulator::binWindowArrivals(Seconds window_end)
{
    std::vector<std::vector<Request>> bins(engines_.size());
    // Dispatch against the window-start load picture plus this
    // window's own binned counts. The serial core reads live loads at
    // each arrival instant; freezing the picture at the window start
    // makes the choice independent of engine execution order — the
    // windowed core's one documented semantic deviation (docs/PERF.md).
    std::vector<int> load(engines_.size(), 0);
    for (std::size_t i = 0; i < engines_.size(); ++i)
        load[i] = engines_[i]->batcher().waitingCount() +
                  engines_[i]->batcher().runningCount();
    const bool replicas = config_.replicas.replicaDevices > 0;
    while (!offeringClosed_) {
        if (!lookaheadValid_) {
            lookahead_ = arrivals_.next();
            lookaheadValid_ = true;
        }
        if (lookahead_.arrival >= config_.horizon) {
            offeringClosed_ = true;
            lookaheadValid_ = false;
            break;
        }
        if (lookahead_.arrival >= window_end)
            break;
        std::size_t target = 0;
        if (replicas) {
            int best = -1;
            int best_load = 0;
            for (std::size_t i = 0; i < engines_.size(); ++i) {
                const EngineState state = engines_[i]->state();
                if (state != EngineState::Active &&
                    state != EngineState::Loading)
                    continue;
                if (best < 0 || load[i] < best_load) {
                    best = static_cast<int>(i);
                    best_load = load[i];
                }
            }
            LAER_ASSERT(best >= 0, "no live replica to dispatch to");
            target = static_cast<std::size_t>(best);
        }
        bins[target].push_back(lookahead_);
        ++load[target];
        ++offered_;
        LAER_TRACE_INSTANT(config_.trace, poolTrack(target), "admit",
                           "serve", lookahead_.arrival,
                           {TraceArg{"id", lookahead_.id},
                            TraceArg{"prefill",
                                     lookahead_.prefillTokens},
                            TraceArg{"decode", lookahead_.decodeTokens},
                            TraceArg{"class", lookahead_.sloClass}});
        if (LAER_REQ_SAMPLED(config_.reqTrace, lookahead_.id))
            LAER_REQ_EVENT(config_.reqTrace,
                           onAdmit(lookahead_.id, lookahead_.sloClass,
                                   lookahead_.arrival,
                                   lookahead_.arrival,
                                   static_cast<int>(target)));
        lookaheadValid_ = false;
    }
    // Keep the calendar coherent for a later serial fallback.
    scheduleArrivalWake();
    return bins;
}

void
ServingSimulator::runEngineWindow(std::size_t i, Seconds window_end,
                                  const std::vector<Request> &arrivals,
                                  WindowBuffer &buf)
{
    ServingEngine &engine = *engines_[i];
    const auto wall_start = std::chrono::steady_clock::now();
    buf.kvEnabled = engine.batcher().kvEnabled();
    Seconds free_at = freeAt_[i];
    // Earliest instant the engine can act; never before the window.
    Seconds clock = std::max(now_, free_at);
    std::size_t next = 0;
    const bool open = engine.state() == EngineState::Active ||
                      engine.state() == EngineState::Loading;
    LAER_ASSERT(open || arrivals.empty(),
                "arrivals binned to a parked engine");
    while (open) {
        while (next < arrivals.size() &&
               arrivals[next].arrival <= clock)
            engine.enqueue(arrivals[next++]);
        if (engine.state() == EngineState::Loading) {
            // The shard-landing moment is the engine's own event; it
            // promotes itself when that falls inside the window.
            if (free_at >= window_end)
                break;
            engine.setReady();
            continue; // clock >= free_at already
        }
        if (!engine.hasWork()) {
            if (next >= arrivals.size())
                break;
            clock = std::max(clock, arrivals[next].arrival);
            continue;
        }
        if (clock >= window_end)
            break;
        // One engine step at `clock` — the serial runDueEngines body
        // with every emission buffered instead of recorded.
        WindowStepRecord rec;
        const BatchPlan plan = engine.planStep();
        rec.preempted = engine.takePreempted();
        if (plan.empty()) {
            // Only back-pressure pauses admission, and back-pressure
            // is disaggregation-only — which the windowed core
            // rejects — so an idle engine holding work is a bug.
            LAER_ASSERT(engine.batcher().admissionPaused(),
                        "engine idle while holding live requests");
            break;
        }
        ServingStepResult res;
        if (config_.selfProfile) {
            const auto exec_start = std::chrono::steady_clock::now();
            res = engine.executeStep(plan, clock);
            buf.execMs +=
                std::chrono::duration<double, std::milli>(
                    std::chrono::steady_clock::now() - exec_start)
                    .count();
        } else {
            res = engine.executeStep(plan, clock);
        }
        res.pool = static_cast<int>(i);
        res.preemptions = static_cast<int>(rec.preempted.size());
        if (buf.kvEnabled)
            res.kvUtilization = engine.batcher().kvUtilization();
        free_at = clock + res.duration;
        // Share capture reads only this engine's pre-commit state and
        // the recorder's pure sampling predicate, so it is safe on the
        // worker; the merge replays the shares on the simulator
        // thread.
        captureStepShares(engine, plan, res, static_cast<int>(i),
                          rec.shares);
        engine.commitStep(plan, free_at);
        rec.result = res;
        rec.completions = engine.takeFinished();
        buf.steps.push_back(std::move(rec));
        clock = free_at;
    }
    // Arrivals the loop did not reach (engine loading past the window
    // end, or busy across it) still join the queue — the serial core
    // enqueues on arrival regardless of engine readiness.
    while (next < arrivals.size())
        engine.enqueue(arrivals[next++]);
    buf.freeAt = free_at;
    buf.wallMs = std::chrono::duration<double, std::milli>(
                     std::chrono::steady_clock::now() - wall_start)
                     .count();
}

void
ServingSimulator::mergeWindowBuffers(std::vector<WindowBuffer> &buffers)
{
    // Replay in (step start, engine index) order — exactly how a
    // serial sweep would have interleaved the engines (each engine's
    // step starts are strictly increasing, so a k-way front merge
    // suffices). The latency collector's streaming percentiles are
    // order-sensitive; this order is a pure function of the window
    // inputs, never of worker scheduling.
    std::vector<std::size_t> cursor(buffers.size(), 0);
    for (;;) {
        std::size_t b = buffers.size();
        Seconds best_start = 0.0;
        for (std::size_t i = 0; i < buffers.size(); ++i) {
            if (cursor[i] >= buffers[i].steps.size())
                continue;
            const Seconds start =
                buffers[i].steps[cursor[i]].result.start;
            if (b == buffers.size() || start < best_start) {
                b = i;
                best_start = start;
            }
        }
        if (b == buffers.size())
            break;
        const WindowStepRecord &rec = buffers[b].steps[cursor[b]++];
        const ServingStepResult &res = rec.result;
        for (const PreemptionRecord &p : rec.preempted) {
            metrics_.recordPreemption(p.sloClass);
            LAER_TRACE_INSTANT(config_.trace, poolTrack(b), "preempt",
                               "serve", res.start,
                               {TraceArg{"class", p.sloClass},
                                TraceArg{"id", p.requestId}});
        }
        poolStats_[b].preemptions +=
            static_cast<std::int64_t>(rec.preempted.size());
        replayStepTrace(rec.preempted, res.start, rec.shares);
        if (buffers[b].kvEnabled) {
            metrics_.recordKvUtilization(res.kvUtilization);
            poolStats_[b].kvUtil.add(res.kvUtilization);
        }
        ++poolStats_[b].steps;
        if (config_.trace != nullptr) {
            const char *kind =
                res.prefill > 0 && res.decode > 0 ? "mixed_step"
                : res.prefill > 0                 ? "prefill_step"
                                                  : "decode_step";
            config_.trace->span(
                poolTrack(b), kind, "serve", res.start, res.duration,
                {TraceArg{"tokens", res.tokens},
                 TraceArg{"prefill", res.prefill},
                 TraceArg{"decode", res.decode},
                 TraceArg{"kv_util", res.kvUtilization},
                 TraceArg{"retuned", res.retuned}});
        }
        if (config_.metricsRegistry != nullptr)
            config_.metricsRegistry->histogram("serve.step_time_s")
                .observe(res.duration);
        for (const Request &done : rec.completions)
            recordCompletion(done);
        steps_.push_back(res);
    }
    for (std::size_t i = 0; i < engines_.size(); ++i) {
        freeAt_[i] = buffers[i].freeAt;
        scheduleEngineWake(i);
        profExecMs_ += buffers[i].execMs;
        emitRetuneSpans(i);
    }
    replayRetuneMetrics();
}

void
ServingSimulator::replayRetuneMetrics()
{
    // Windowed engines run with EngineConfig::metrics detached (the
    // registry is not thread-safe); their retune wall samples reach
    // the registry here, serially. The serial core records per-layer
    // solver times at the retuning step instead — both land before
    // the next snapshot, and the planner.retune_wall_ms family is
    // wall-clock noise the difftest layer already ignores.
    if (!desParallel_ || config_.metricsRegistry == nullptr)
        return;
    for (std::size_t i = 0; i < engines_.size(); ++i) {
        const std::vector<RetuneWallSample> &samples =
            engines_[i]->retuneWall();
        for (std::size_t s = retuneReplayed_[i]; s < samples.size();
             ++s) {
            config_.metricsRegistry
                ->histogram("planner.retune_wall_ms")
                .observe(samples[s].wallMs);
            if (samples[s].overBudget)
                config_.metricsRegistry
                    ->counter("planner.retune_over_budget")
                    .add(1);
        }
        retuneReplayed_[i] = samples.size();
    }
}

ServingReport
ServingSimulator::run()
{
    while (step()) {
    }
    return finish();
}

ServingReport
ServingSimulator::finish()
{
    // The clock stops at the last event *start*; the run ends when the
    // last engine drains. A still-Loading engine never served: its
    // ready time does not extend the run.
    for (std::size_t i = 0; i < engines_.size(); ++i)
        if (engines_[i]->state() != EngineState::Loading)
            now_ = std::max(now_, freeAt_[i]);
    accruePower(now_);
    if (config_.trace != nullptr)
        for (std::size_t i = 0; i < engines_.size(); ++i)
            emitRetuneSpans(i);
    if (config_.metricsRegistry != nullptr) {
        updateRegistryGauges();
        if (config_.selfProfile) {
            double retune_ms = 0.0;
            for (const RetuneWallSample &s : retiredRetuneWall_)
                retune_ms += s.wallMs;
            for (const auto &engine : engines_)
                for (const RetuneWallSample &s : engine->retuneWall())
                    retune_ms += s.wallMs;
            config_.metricsRegistry->gauge("profile.retune_ms")
                .set(retune_ms);
            config_.metricsRegistry->gauge("profile.step_pricing_ms")
                .set(std::max(0.0, profExecMs_ - retune_ms));
            config_.metricsRegistry->gauge("profile.event_loop_ms")
                .set(std::max(0.0, profStepMs_ - profExecMs_));
        }
        if (desParallel_) {
            // Windowed-core fan-out profile. profile.* is wall-clock
            // noise the difftest layer ignores by default, so these
            // are lane- and golden-safe.
            MetricsRegistry &reg = *config_.metricsRegistry;
            reg.gauge("profile.descore.windows")
                .set(static_cast<double>(descoreWindows_));
            reg.gauge("profile.descore.steps")
                .set(static_cast<double>(descoreSteps_));
            reg.gauge("profile.descore.fanout_ms")
                .set(descoreFanoutMs_);
            reg.gauge("profile.descore.worker_busy_ms")
                .set(descoreWorkerBusyMs_);
            reg.gauge("profile.descore.merge_ms").set(descoreMergeMs_);
            reg.gauge("profile.descore.barrier_wait_ms")
                .set(descoreBarrierWaitMs_);
        }
        // A final snapshot at end-of-run, even when interval snapshots
        // are off, so --metrics-out always captures the run's totals.
        config_.metricsRegistry->recordSnapshot(now_);
    }
    return buildReport();
}

ServingReport
ServingSimulator::buildReport() const
{
    ServingReport report;
    report.policy = config_.policy;
    report.offered = offered_;
    report.completed = metrics_.completed();
    report.sloMet = metrics_.sloMet();
    report.steps = static_cast<int>(steps_.size());
    // Rebuilt engines (replica spin-up, split re-partition) retire
    // their monotone counters into the carry-over fields; summing only
    // the live engines would silently drop them.
    report.retunes = retiredRetunes_;
    for (const auto &engine : engines_)
        report.retunes += engine->retunes();
    report.elapsed = now_;
    report.ttftP50 = metrics_.ttftPercentile(50.0);
    report.ttftP90 = metrics_.ttftPercentile(90.0);
    report.ttftP99 = metrics_.ttftPercentile(99.0);
    report.tpotP50 = metrics_.tpotPercentile(50.0);
    report.tpotP99 = metrics_.tpotPercentile(99.0);
    report.throughputTps = metrics_.throughput(now_);
    report.goodputTps = metrics_.goodput(now_);

    Accumulator tokens, step_time, imbalance;
    for (const ServingStepResult &s : steps_) {
        tokens.add(static_cast<double>(s.tokens));
        step_time.add(s.duration);
        imbalance.add(s.maxRelTokens);
        report.migrationTotal += s.migration;
        report.swapOutBytes += s.swapOutBytes;
        report.swapInBytes += s.swapInBytes;
        report.swapSeconds += s.swapTime;
    }
    report.meanBatchTokens = tokens.mean();
    report.meanStepTime = step_time.mean();
    report.meanMaxRelTokens = imbalance.mean();

    for (const auto &engine : engines_)
        report.kvBudgetBytes += engine->batcher().kvBudgetBytes();
    // Preemption counts are engine-authoritative: live batcher
    // counters plus the carry-over of rebuilt engines, the same carry
    // discipline as report.retunes above. The latency collector sees
    // the same events through the per-step drain, so the two paths
    // must agree — the debug assert pins that identity (and with it,
    // byte-identical reports).
    std::int64_t preemptions = retiredPreemptions_;
    std::vector<std::int64_t> by_class = retiredPreemptionsByClass_;
    if (static_cast<int>(by_class.size()) <
        config_.batcher.numSloClasses)
        by_class.resize(config_.batcher.numSloClasses, 0);
    for (const auto &engine : engines_) {
        preemptions += engine->batcher().totalPreemptions();
        const std::vector<std::int64_t> &pc =
            engine->batcher().preemptionsByClass();
        if (pc.size() > by_class.size())
            by_class.resize(pc.size(), 0);
        for (std::size_t c = 0; c < pc.size(); ++c)
            by_class[c] += pc[c];
    }
#ifndef NDEBUG
    LAER_ASSERT(preemptions == metrics_.totalPreemptions(),
                "engine preemption counters disagree with the latency "
                "collector");
    for (std::size_t c = 0; c < by_class.size(); ++c)
        LAER_ASSERT(by_class[c] ==
                        metrics_.preemptions(static_cast<int>(c)),
                    "per-class preemption counters disagree with the "
                    "latency collector for class "
                        << c);
#endif
    report.preemptions = preemptions;
    report.preemptionsByClass = std::move(by_class);
    report.meanKvUtilization = metrics_.meanKvUtilization();
    report.peakKvUtilization = metrics_.peakKvUtilization();
    report.attributionByClass = metrics_.attributionByClass();

    for (std::size_t i = 0; i < engines_.size(); ++i) {
        PoolReport pool;
        pool.name = engines_[i]->slice().name;
        pool.devices = engines_[i]->slice().numDevices();
        pool.kvBudgetBytes = engines_[i]->batcher().kvBudgetBytes();
        pool.steps = poolStats_[i].steps;
        pool.preemptions = poolStats_[i].preemptions;
        pool.meanKvUtilization = poolStats_[i].kvUtil.mean();
        pool.peakKvUtilization = poolStats_[i].kvUtil.max();
        report.pools.push_back(pool);
    }
    // Planner wall-time accounting: every engine's retune samples —
    // retired engines' first, then the live ones in engine order
    // (sample times are simulated; wall times are real).
    report.tunerBudgetMs = config_.tunerBudgetMs;
    report.retuneWall = retiredRetuneWall_;
    for (const auto &engine : engines_)
        for (const RetuneWallSample &sample : engine->retuneWall())
            report.retuneWall.push_back(sample);
    for (const RetuneWallSample &sample : report.retuneWall) {
        report.retuneWallMaxMs =
            std::max(report.retuneWallMaxMs, sample.wallMs);
        if (sample.overBudget)
            ++report.retuneBudgetOverruns;
    }
    if (!report.retuneWall.empty()) {
        double total = 0.0;
        for (const RetuneWallSample &sample : report.retuneWall)
            total += sample.wallMs;
        report.retuneWallMeanMs =
            total / static_cast<double>(report.retuneWall.size());
    }

    report.migrated = migrated_;
    report.kvTransferBytes = kvTransferBytes_;
    report.kvTransferSeconds = kvTransferSeconds_;
    report.transferStallSeconds = transferStallSeconds_;
    report.deviceSeconds = deviceSecondsSoFar();
    report.scalingEvents = scalingEvents_;
    report.windows = windows_;

    if (config_.selfProfile) {
        double retune_ms = 0.0;
        for (const RetuneWallSample &sample : report.retuneWall)
            retune_ms += sample.wallMs;
        report.profRetuneMs = retune_ms;
        report.profStepPricingMs =
            std::max(0.0, profExecMs_ - retune_ms);
        report.profEventLoopMs =
            std::max(0.0, profStepMs_ - profExecMs_);
    }

    // Availability accounting (all zero on fault-free runs). A report
    // built mid-run (finish() after manual step()ping) closes the
    // still-open degraded window against now_ without mutating it.
    AvailabilityReport &avail = report.availability;
    avail.faultsInjected = faultsInjected_;
    avail.repairs = repairsDone_;
    avail.requestsRetried = requestsRetried_;
    avail.requestsFailed = requestsFailed_;
    avail.transfersAborted = transfersAborted_;
    for (const Seconds sample : mttrSamples_) {
        avail.mttrMean += sample;
        avail.mttrMax = std::max(avail.mttrMax, sample);
    }
    if (!mttrSamples_.empty())
        avail.mttrMean /= static_cast<double>(mttrSamples_.size());
    Seconds degraded = degradedSeconds_;
    std::int64_t degraded_tokens = degradedGoodTokens_;
    if (degradedSince_ >= 0.0) {
        degraded += now_ - degradedSince_;
        degraded_tokens +=
            metrics_.goodTokens() - goodTokensAtDegradeStart_;
    }
    avail.degradedSeconds = degraded;
    if (degraded > 0.0)
        avail.degradedGoodputTps =
            static_cast<double>(degraded_tokens) / degraded;
    avail.failedByClass = failedByClass_;
    avail.timeline = faultTimeline_;
    return report;
}

} // namespace laer
