/**
 * @file
 * Device-pool slices of a cluster and the inter-pool KV transfer cost.
 *
 * A serving simulation no longer assumes one homogeneous device pool:
 * the cluster is partitioned into disjoint, contiguous
 * `DevicePoolSlice`s, each owning its device range, a standalone
 * sub-`Cluster` view of the topology (so All-to-All pricing and the
 * memory budget see only the pool's devices), and — through the
 * `ServingEngine` built on top — its own `KvCachePool` and token
 * budget. Prefill/decode disaggregation is two such slices; the
 * classic aggregated engine is the single whole-cluster slice.
 *
 * When a sequence migrates between pools (prefill completion hands the
 * context to the decode pool), its cached KV —
 * contextLength * kvBytesPerToken bytes — crosses the wire. The
 * transfer is priced like the `fsep/volume.hh` collectives: the KV is
 * sharded over the source pool, every source device streams its shard
 * to a peer in the destination pool in parallel, and the transfer
 * drains at min(srcDevices, dstDevices) concurrent links of the
 * boundary bandwidth (inter-node unless both pools share one node).
 */

#ifndef LAER_SERVE_DEVICE_POOL_HH
#define LAER_SERVE_DEVICE_POOL_HH

#include <string>
#include <vector>

#include "core/types.hh"
#include "topo/cluster.hh"

namespace laer
{

/**
 * A contiguous slice of the cluster's devices owned by one serving
 * engine. `topo` is the slice's standalone two-level topology view,
 * used for pricing the engine's collectives and compute.
 */
struct DevicePoolSlice
{
    std::string name;       //!< "serve", "prefill", "decode", ...
    DeviceId firstDevice;   //!< first global device id of the slice
    int count;              //!< devices in the slice
    Cluster topo;           //!< sub-cluster view of the slice

    DevicePoolSlice(std::string pool_name, DeviceId first, int n,
                    Cluster sub)
        : name(std::move(pool_name)), firstDevice(first), count(n),
          topo(std::move(sub))
    {
    }

    /** Devices in this slice. */
    int numDevices() const { return count; }

    /** One past the last global device id of the slice. */
    DeviceId endDevice() const { return firstDevice + count; }

    /** True when global device id `d` belongs to this slice. */
    bool contains(DeviceId d) const
    {
        return d >= firstDevice && d < endDevice();
    }
};

/** The whole cluster as a single pool named `name`. */
DevicePoolSlice wholeClusterSlice(const Cluster &cluster,
                                  const std::string &name = "serve");

/**
 * Partition the cluster into contiguous slices of the given sizes.
 * Conservation and disjointness hold by construction: the counts must
 * be positive and sum to the cluster's device count, and slice i
 * starts where slice i-1 ended. Each slice must be node-regular
 * (whole nodes, or contained in one node) so it has a sub-cluster
 * geometry — see Cluster::contiguousSlice.
 *
 * @param cluster  Topology to partition.
 * @param counts   Devices per slice, in device-id order.
 * @param names    One name per slice (same length as counts).
 * @return the slices, in device-id order.
 */
std::vector<DevicePoolSlice>
partitionCluster(const Cluster &cluster, const std::vector<int> &counts,
                 const std::vector<std::string> &names);

/**
 * Seconds to move `bytes` of KV cache from pool `src` to pool `dst`:
 * one collective-launch alpha plus the bytes drained over
 * min(src, dst) parallel links at the boundary bandwidth — the
 * inter-node (NIC) rate unless both slices live inside one node.
 *
 * @param cluster  Topology both slices were cut from.
 * @param src      Source pool (holds the KV, sharded).
 * @param dst      Destination pool.
 * @param bytes    KV bytes transferred (contextLength * kvBytesPerToken).
 * @return the wire time in seconds; 0 bytes still pay the alpha.
 */
Seconds kvTransferTime(const Cluster &cluster, const DevicePoolSlice &src,
                       const DevicePoolSlice &dst, Bytes bytes);

} // namespace laer

#endif // LAER_SERVE_DEVICE_POOL_HH
