#include "serve/batcher.hh"

#include <algorithm>

#include "core/error.hh"

namespace laer
{

const char *
preemptionModeName(PreemptionMode mode)
{
    switch (mode) {
      case PreemptionMode::Recompute:
        return "recompute";
      case PreemptionMode::Swap:
        return "swap";
    }
    return "?";
}

TokenCount
BatchPlan::totalTokens() const
{
    TokenCount total = 0;
    for (const BatchEntry &e : entries)
        total += e.prefillTokens + e.decodeTokens;
    return total;
}

TokenCount
BatchPlan::prefillTokens() const
{
    TokenCount total = 0;
    for (const BatchEntry &e : entries)
        total += e.prefillTokens;
    return total;
}

TokenCount
BatchPlan::decodeTokens() const
{
    TokenCount total = 0;
    for (const BatchEntry &e : entries)
        total += e.decodeTokens;
    return total;
}

ContinuousBatcher::ContinuousBatcher(const BatcherConfig &config)
    : config_(config), waiting_(config.numSloClasses),
      preemptionsByClass_(config.numSloClasses, 0)
{
    LAER_CHECK(config_.tokenBudget >= 1, "token budget must be positive");
    LAER_CHECK(config_.prefillChunk >= 1,
               "prefill chunk must be positive");
    LAER_CHECK(config_.numSloClasses >= 1, "need at least one SLO class");
    LAER_CHECK(config_.numDevices >= 1, "need at least one device");
    LAER_CHECK(config_.deviceTokenCap >= 0,
               "device token cap cannot be negative");
    if (config_.kvBudgetBytes > 0) {
        LAER_CHECK(config_.kvBytesPerToken >= 1,
                   "KV model needs kvBytesPerToken");
        kv_.emplace(config_.kvBudgetBytes, config_.kvBytesPerToken,
                    config_.kvBlockTokens);
    } else {
        LAER_CHECK(config_.maxRunning >= 1, "need at least one KV slot");
    }
}

TokenCount
ContinuousBatcher::effectiveBudget() const
{
    if (config_.deviceTokenCap == 0)
        return config_.tokenBudget;
    return std::min(config_.tokenBudget,
                    config_.deviceTokenCap * config_.numDevices);
}

Bytes
ContinuousBatcher::kvBudgetBytes() const
{
    return kv_ ? kv_->budgetBytes() : 0;
}

Bytes
ContinuousBatcher::kvReservedBytes() const
{
    return kv_ ? kv_->reservedBytes() : 0;
}

double
ContinuousBatcher::kvUtilization() const
{
    return kv_ ? kv_->utilization() : 0.0;
}

void
ContinuousBatcher::validateAdmissible(const Request &request) const
{
    LAER_CHECK(request.sloClass >= 0 &&
                   request.sloClass < config_.numSloClasses,
               "request SLO class out of range");
    LAER_CHECK(request.prefillTokens >= 1 && request.decodeTokens >= 1,
               "request needs at least one prefill and decode token");
    if (kv_) {
        // A request whose full context can never fit the pool would
        // deadlock admission; that is a configuration error.
        LAER_CHECK(kv_->bytesFor(request.prefillTokens +
                                 request.decodeTokens) <=
                       kv_->budgetBytes(),
                   "request " << request.id << " needs "
                              << kv_->bytesFor(request.prefillTokens +
                                               request.decodeTokens)
                              << " KV bytes but the pool holds only "
                              << kv_->budgetBytes());
    }
}

void
ContinuousBatcher::enqueue(const Request &request)
{
    validateAdmissible(request);
    waiting_[request.sloClass].push_back(request);
}

void
ContinuousBatcher::enqueueFront(const Request &request)
{
    validateAdmissible(request);
    waiting_[request.sloClass].push_front(request);
}

std::vector<Request>
ContinuousBatcher::resizeKvBudget(Bytes budget)
{
    std::vector<Request> unservable;
    if (!kv_ || budget == kv_->budgetBytes())
        return unservable;
    LAER_CHECK(budget >= 1, "KV resize needs a positive budget");
    // Shrink first: force-preempt running sequences through the normal
    // eviction machinery (lowest priority, youngest first — grower
    // class 0 puts every sequence in scope) until the survivors fit.
    // Only running sequences hold reservations, so reserved > budget
    // guarantees a victim exists.
    while (kv_->reservedBytes() > budget) {
        const int victim = pickVictim({}, 0);
        LAER_ASSERT(victim >= 0,
                    "KV bytes reserved with nothing running");
        preempt(victim);
    }
    kv_->setBudget(budget);
    // Sweep out requests whose FULL context can never fit again (the
    // preempt loop parked its victims in waiting_, so one pass over
    // the queues after it catches them too).
    const auto fits = [this](const Request &r) {
        return kv_->bytesFor(r.prefillTokens + r.decodeTokens) <=
               kv_->budgetBytes();
    };
    for (auto &queue : waiting_) {
        for (auto it = queue.begin(); it != queue.end();) {
            if (fits(*it)) {
                ++it;
                continue;
            }
            unservable.push_back(*it);
            it = queue.erase(it);
        }
    }
    for (auto it = running_.begin(); it != running_.end();) {
        if (fits(*it)) {
            ++it;
            continue;
        }
        kv_->release(it->id);
        unservable.push_back(*it);
        it = running_.erase(it);
    }
    return unservable;
}

int
ContinuousBatcher::pickVictim(const std::vector<int> &protected_ids,
                              int grower_class) const
{
    // Lowest priority = highest SLO class id. Within that class the
    // tie-break depends on the eviction discipline: recompute evicts
    // the youngest (latest admitted, i.e. furthest back in running_ —
    // it has the least cache to rebuild so far); swap prefers the
    // sequence with the FEWEST remaining decode tokens, whose parked
    // KV comes back for the cheapest remaining work (final ties still
    // go to the youngest). A grower may only displace requests of its
    // own or a lower-priority class — when only higher-priority
    // sequences hold the pool, the grower yields instead (see
    // secureDecodeGrowth).
    const bool swap = config_.preemptionMode == PreemptionMode::Swap;
    int best = -1;
    int best_class = -1;
    TokenCount best_remaining = 0;
    for (int i = 0; i < static_cast<int>(running_.size()); ++i) {
        const Request &r = running_[i];
        if (r.sloClass < grower_class)
            continue;
        if (std::find(protected_ids.begin(), protected_ids.end(),
                      r.id) != protected_ids.end())
            continue;
        if (r.sloClass > best_class) {
            best_class = r.sloClass;
            best = i;
            best_remaining = r.decodeTokens - r.decodeDone;
            continue;
        }
        if (r.sloClass < best_class)
            continue;
        const TokenCount remaining = r.decodeTokens - r.decodeDone;
        if (!swap || remaining <= best_remaining) {
            best = i;
            best_remaining = remaining;
        }
    }
    return best;
}

void
ContinuousBatcher::preempt(int index)
{
    Request victim = running_[static_cast<std::size_t>(index)];
    running_.erase(running_.begin() + index);
    if (config_.preemptionMode == PreemptionMode::Swap) {
        // The reservation moves to host intact: prefill progress (and
        // the cache behind it) survives, and re-admission restores
        // exactly the bytes parked here.
        victim.swappedBytes = kv_->reservedOf(victim.id);
        victim.swapped = true;
        swapOutBytes_ += victim.swappedBytes;
        kv_->release(victim.id);
    } else {
        kv_->release(victim.id);
        victim.restoring = true;
        victim.prefillDone = 0;
    }
    ++victim.preemptions;
    preemptedLog_.push_back(
        PreemptionRecord{victim.sloClass, victim.id});
    ++totalPreemptions_;
    ++preemptionsByClass_[victim.sloClass];
    // Front of the class queue: a preempted request resumes before
    // fresh arrivals of its class. Victims are evicted youngest-first,
    // so successive push_fronts restore admission order among them.
    waiting_[victim.sloClass].push_front(victim);
}

void
ContinuousBatcher::secureDecodeGrowth()
{
    // Grow in scheduling priority order — class first, admission order
    // within a class — so when the pool runs dry the high-priority old
    // sequences keep decoding and the low-priority young ones yield.
    std::vector<int> growers;
    for (int c = 0; c < config_.numSloClasses; ++c)
        for (const Request &r : running_)
            if (r.sloClass == c && r.phase() == RequestPhase::Decode)
                growers.push_back(r.id);

    std::vector<int> secured;
    for (const int id : growers) {
        const auto self = std::find_if(
            running_.begin(), running_.end(),
            [id](const Request &r) { return r.id == id; });
        if (self == running_.end())
            continue; // already evicted by an earlier grower
        const TokenCount target = self->contextLength() + 1;
        const int grower_class = self->sloClass;

        std::vector<int> protected_ids = secured;
        protected_ids.push_back(id);
        while (!kv_->canGrow(id, target)) {
            const int victim = pickVictim(protected_ids, grower_class);
            if (victim < 0)
                break;
            preempt(victim);
        }
        if (kv_->canGrow(id, target)) {
            kv_->grow(id, target);
            secured.push_back(id);
        } else {
            // No same-or-lower-priority sequence is left to evict and
            // the growth still does not fit: the grower yields rather
            // than over-committing or displacing higher priorities.
            const auto again = std::find_if(
                running_.begin(), running_.end(),
                [id](const Request &r) { return r.id == id; });
            preempt(static_cast<int>(again - running_.begin()));
        }
    }
}

BatchPlan
ContinuousBatcher::nextBatch()
{
    BatchPlan plan;
    TokenCount budget = effectiveBudget();

    // KV pre-pass: reserve this step's decode growth, evicting victims
    // (recompute-style) when the pool is exhausted. Every decode-phase
    // sequence still running afterwards holds a reservation covering
    // its next token.
    if (kv_)
        secureDecodeGrowth();

    // Decode first: one token per running sequence past prefill, in
    // admission order, so generation latency never queues behind
    // prompt processing.
    for (const Request &r : running_) {
        if (budget < 1)
            break;
        if (r.phase() != RequestPhase::Decode)
            continue;
        BatchEntry e;
        e.requestId = r.id;
        e.decodeTokens = 1;
        plan.entries.push_back(e);
        budget -= 1;
    }

    // Continue chunked prefills of already-running requests (after a
    // preemption the target also covers recomputing generated tokens).
    for (const Request &r : running_) {
        if (budget < 1)
            break;
        const TokenCount remaining = r.prefillTarget() - r.prefillDone;
        if (remaining <= 0)
            continue;
        BatchEntry e;
        e.requestId = r.id;
        e.prefillTokens =
            std::min({remaining, config_.prefillChunk, budget});
        plan.entries.push_back(e);
        budget -= e.prefillTokens;
    }

    // Admit waiting requests: class order, FIFO within a class. With
    // the KV model the pool must cover the request's current context
    // (prompt, plus generated tokens when it re-enters after a
    // preemption); without it, the legacy maxRunning slot count rules.
    // A head blocked on memory halts admission for EVERY later class
    // too — otherwise lower-priority requests would keep sniping the
    // bytes the higher-priority head is waiting for and starve it.
    // Paused admission (downstream back-pressure) skips this phase
    // entirely; running sequences above were still scheduled.
    bool memory_blocked = false;
    for (auto &queue : waiting_) {
        if (admissionPaused_ || memory_blocked)
            break;
        while (!queue.empty() && budget >= 1) {
            Request &head = queue.front();
            if (kv_) {
                if (!kv_->canGrow(head.id, head.contextLength())) {
                    memory_blocked = true;
                    break; // strict FIFO: everyone waits for memory
                }
                kv_->grow(head.id, head.contextLength());
            } else if (runningCount() >= config_.maxRunning) {
                break;
            }
            Request r = head;
            queue.pop_front();
            if (r.swapped) {
                // Host restore: the engine charges the PCIe time for
                // these bytes against this step.
                swapInBytes_ += r.swappedBytes;
                r.swappedBytes = 0;
                r.swapped = false;
            }
            BatchEntry e;
            e.requestId = r.id;
            const TokenCount remaining =
                r.prefillTarget() - r.prefillDone;
            if (remaining > 0) {
                e.prefillTokens =
                    std::min({remaining, config_.prefillChunk, budget});
                budget -= e.prefillTokens;
            } else {
                // A context entering with its prefill already done (a
                // swapped-in decoder, or a sequence migrated from a
                // prefill pool) resumes decoding immediately.
                e.decodeTokens = 1;
                budget -= 1;
            }
            plan.entries.push_back(e);
            running_.push_back(r);
            ++totalAdmissions_;
        }
    }
    return plan;
}

void
ContinuousBatcher::applyStep(const BatchPlan &plan, Seconds finish_time)
{
    for (const BatchEntry &e : plan.entries) {
        auto it = std::find_if(running_.begin(), running_.end(),
                               [&](const Request &r) {
                                   return r.id == e.requestId;
                               });
        LAER_CHECK(it != running_.end(),
                   "batch entry references unknown request "
                       << e.requestId);
        Request &r = *it;
        if (e.prefillTokens > 0) {
            LAER_ASSERT(e.decodeTokens == 0,
                        "a step schedules prefill or decode, not both");
            r.prefillDone += e.prefillTokens;
            LAER_ASSERT(r.prefillDone <= r.prefillTarget(),
                        "prefill overran its target");
            if (r.prefillDone == r.prefillTarget()) {
                if (r.firstTokenTime < 0.0) {
                    // The step completing the prefill emits the first
                    // output token.
                    r.firstTokenTime = finish_time;
                    r.decodeDone = 1;
                }
                // A KV recompute after preemption ends here; the
                // tokens it replayed were already delivered.
                r.restoring = false;
            }
        } else if (e.decodeTokens > 0) {
            LAER_ASSERT(r.phase() == RequestPhase::Decode,
                        "decode scheduled for a non-decoding request");
            r.decodeDone += e.decodeTokens;
        }
        if (r.phase() == RequestPhase::Finished)
            r.finishTime = finish_time;
    }

    // Retire finished requests while preserving admission order.
    for (auto it = running_.begin(); it != running_.end();) {
        if (it->phase() == RequestPhase::Finished) {
            if (kv_)
                kv_->release(it->id);
            finished_.push_back(*it);
            it = running_.erase(it);
        } else {
            ++it;
        }
    }
}

std::vector<Request>
ContinuousBatcher::drainAll()
{
    std::vector<Request> out;
    out.reserve(running_.size() + waitingCount());
    const auto evict = [this, &out](Request r) {
        if (kv_)
            kv_->release(r.id);
        if (r.swapped) {
            // Host-parked KV belongs to the old pool's shard layout;
            // the re-homed sequence rebuilds its cache instead.
            r.swapped = false;
            r.swappedBytes = 0;
        }
        if (r.prefillDone > 0 || r.decodeDone > 0) {
            r.restoring = r.decodeDone > 0;
            r.prefillDone = 0;
        }
        out.push_back(r);
    };
    for (int c = 0; c < config_.numSloClasses; ++c) {
        for (const Request &r : running_)
            if (r.sloClass == c)
                evict(r);
        for (const Request &r : waiting_[c])
            evict(r);
        waiting_[c].clear();
    }
    running_.clear();
    return out;
}

std::vector<Request>
ContinuousBatcher::takeFinished()
{
    std::vector<Request> out;
    out.swap(finished_);
    return out;
}

std::vector<PreemptionRecord>
ContinuousBatcher::takePreempted()
{
    std::vector<PreemptionRecord> out;
    out.swap(preemptedLog_);
    return out;
}

std::vector<int>
ContinuousBatcher::takePreemptedClasses()
{
    std::vector<int> out;
    out.reserve(preemptedLog_.size());
    for (const PreemptionRecord &p : preemptedLog_)
        out.push_back(p.sloClass);
    preemptedLog_.clear();
    return out;
}

bool
ContinuousBatcher::canAdmitContext(TokenCount context) const
{
    if (kv_)
        return kv_->bytesFor(context) + waitingKvDemand() <=
               kv_->freeBytes();
    return runningCount() + waitingCount() < config_.maxRunning;
}

Bytes
ContinuousBatcher::waitingKvDemand() const
{
    if (!kv_)
        return 0;
    Bytes demand = 0;
    for (const auto &queue : waiting_)
        for (const Request &r : queue)
            demand += kv_->bytesFor(r.contextLength());
    return demand;
}

TokenCount
ContinuousBatcher::maxLiveFullContext() const
{
    TokenCount max_context = 0;
    for (const Request &r : running_)
        max_context =
            std::max(max_context, r.prefillTokens + r.decodeTokens);
    for (const auto &queue : waiting_)
        for (const Request &r : queue)
            max_context = std::max(max_context,
                                   r.prefillTokens + r.decodeTokens);
    return max_context;
}

Bytes
ContinuousBatcher::kvBytesFor(TokenCount context) const
{
    return kv_ ? kv_->bytesFor(context) : 0;
}

Bytes
ContinuousBatcher::takeSwapOutBytes()
{
    const Bytes bytes = swapOutBytes_;
    swapOutBytes_ = 0;
    return bytes;
}

Bytes
ContinuousBatcher::takeSwapInBytes()
{
    const Bytes bytes = swapInBytes_;
    swapInBytes_ = 0;
    return bytes;
}

const Request *
ContinuousBatcher::find(int id) const
{
    for (const Request &r : running_)
        if (r.id == id)
            return &r;
    for (const auto &queue : waiting_)
        for (const Request &r : queue)
            if (r.id == id)
                return &r;
    return nullptr;
}

bool
ContinuousBatcher::hasWork() const
{
    return !running_.empty() || waitingCount() > 0;
}

int
ContinuousBatcher::waitingCount() const
{
    int n = 0;
    for (const auto &queue : waiting_)
        n += static_cast<int>(queue.size());
    return n;
}

} // namespace laer
