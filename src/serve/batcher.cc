#include "serve/batcher.hh"

#include <algorithm>

#include "core/error.hh"

namespace laer
{

TokenCount
BatchPlan::totalTokens() const
{
    TokenCount total = 0;
    for (const BatchEntry &e : entries)
        total += e.prefillTokens + e.decodeTokens;
    return total;
}

TokenCount
BatchPlan::prefillTokens() const
{
    TokenCount total = 0;
    for (const BatchEntry &e : entries)
        total += e.prefillTokens;
    return total;
}

TokenCount
BatchPlan::decodeTokens() const
{
    TokenCount total = 0;
    for (const BatchEntry &e : entries)
        total += e.decodeTokens;
    return total;
}

ContinuousBatcher::ContinuousBatcher(const BatcherConfig &config)
    : config_(config), waiting_(config.numSloClasses)
{
    LAER_CHECK(config_.tokenBudget >= 1, "token budget must be positive");
    LAER_CHECK(config_.maxRunning >= 1, "need at least one KV slot");
    LAER_CHECK(config_.prefillChunk >= 1,
               "prefill chunk must be positive");
    LAER_CHECK(config_.numSloClasses >= 1, "need at least one SLO class");
    LAER_CHECK(config_.numDevices >= 1, "need at least one device");
    LAER_CHECK(config_.deviceTokenCap >= 0,
               "device token cap cannot be negative");
}

TokenCount
ContinuousBatcher::effectiveBudget() const
{
    if (config_.deviceTokenCap == 0)
        return config_.tokenBudget;
    return std::min(config_.tokenBudget,
                    config_.deviceTokenCap * config_.numDevices);
}

void
ContinuousBatcher::enqueue(const Request &request)
{
    LAER_CHECK(request.sloClass >= 0 &&
                   request.sloClass < config_.numSloClasses,
               "request SLO class out of range");
    LAER_CHECK(request.prefillTokens >= 1 && request.decodeTokens >= 1,
               "request needs at least one prefill and decode token");
    waiting_[request.sloClass].push_back(request);
}

BatchPlan
ContinuousBatcher::nextBatch()
{
    BatchPlan plan;
    TokenCount budget = effectiveBudget();

    // Decode first: one token per running sequence past prefill, in
    // admission order, so generation latency never queues behind
    // prompt processing.
    for (const Request &r : running_) {
        if (budget < 1)
            break;
        if (r.phase() != RequestPhase::Decode)
            continue;
        BatchEntry e;
        e.requestId = r.id;
        e.decodeTokens = 1;
        plan.entries.push_back(e);
        budget -= 1;
    }

    // Continue chunked prefills of already-running requests.
    for (const Request &r : running_) {
        if (budget < 1)
            break;
        const TokenCount remaining = r.prefillTokens - r.prefillDone;
        if (remaining <= 0)
            continue;
        BatchEntry e;
        e.requestId = r.id;
        e.prefillTokens =
            std::min({remaining, config_.prefillChunk, budget});
        plan.entries.push_back(e);
        budget -= e.prefillTokens;
    }

    // Admit waiting requests: class order, FIFO within a class.
    for (auto &queue : waiting_) {
        while (!queue.empty() && budget >= 1 &&
               runningCount() < config_.maxRunning) {
            Request r = queue.front();
            queue.pop_front();
            BatchEntry e;
            e.requestId = r.id;
            e.prefillTokens =
                std::min({r.prefillTokens, config_.prefillChunk, budget});
            plan.entries.push_back(e);
            budget -= e.prefillTokens;
            running_.push_back(r);
        }
    }
    return plan;
}

void
ContinuousBatcher::applyStep(const BatchPlan &plan, Seconds finish_time)
{
    for (const BatchEntry &e : plan.entries) {
        auto it = std::find_if(running_.begin(), running_.end(),
                               [&](const Request &r) {
                                   return r.id == e.requestId;
                               });
        LAER_CHECK(it != running_.end(),
                   "batch entry references unknown request "
                       << e.requestId);
        Request &r = *it;
        if (e.prefillTokens > 0) {
            LAER_ASSERT(e.decodeTokens == 0,
                        "a step schedules prefill or decode, not both");
            r.prefillDone += e.prefillTokens;
            LAER_ASSERT(r.prefillDone <= r.prefillTokens,
                        "prefill overran the prompt");
            if (r.prefillDone == r.prefillTokens) {
                // The step completing the prefill emits the first
                // output token.
                r.firstTokenTime = finish_time;
                r.decodeDone = 1;
            }
        } else if (e.decodeTokens > 0) {
            LAER_ASSERT(r.phase() == RequestPhase::Decode,
                        "decode scheduled for a non-decoding request");
            r.decodeDone += e.decodeTokens;
        }
        if (r.decodeDone >= r.decodeTokens)
            r.finishTime = finish_time;
    }

    // Retire finished requests while preserving admission order.
    for (auto it = running_.begin(); it != running_.end();) {
        if (it->phase() == RequestPhase::Finished) {
            finished_.push_back(*it);
            it = running_.erase(it);
        } else {
            ++it;
        }
    }
}

std::vector<Request>
ContinuousBatcher::takeFinished()
{
    std::vector<Request> out;
    out.swap(finished_);
    return out;
}

const Request *
ContinuousBatcher::find(int id) const
{
    for (const Request &r : running_)
        if (r.id == id)
            return &r;
    for (const auto &queue : waiting_)
        for (const Request &r : queue)
            if (r.id == id)
                return &r;
    return nullptr;
}

bool
ContinuousBatcher::hasWork() const
{
    return !running_.empty() || waitingCount() > 0;
}

int
ContinuousBatcher::waitingCount() const
{
    int n = 0;
    for (const auto &queue : waiting_)
        n += static_cast<int>(queue.size());
    return n;
}

} // namespace laer
