#include "serve/request.hh"

#include "core/error.hh"
#include "core/stats.hh"

namespace laer
{

const char *
requestPhaseName(RequestPhase phase)
{
    switch (phase) {
      case RequestPhase::Queued:
        return "queued";
      case RequestPhase::Prefill:
        return "prefill";
      case RequestPhase::Decode:
        return "decode";
      case RequestPhase::Finished:
        return "finished";
    }
    return "?";
}

RequestPhase
Request::phase() const
{
    if (!restoring && decodeDone >= decodeTokens)
        return RequestPhase::Finished;
    if (prefillDone >= prefillTarget())
        return RequestPhase::Decode;
    if (prefillDone > 0)
        return RequestPhase::Prefill;
    return RequestPhase::Queued;
}

Seconds
Request::ttft() const
{
    return firstTokenTime < 0.0 ? -1.0 : firstTokenTime - arrival;
}

Seconds
Request::tpot() const
{
    if (decodeTokens < 2 || finishTime < 0.0 || firstTokenTime < 0.0)
        return 0.0;
    return (finishTime - firstTokenTime) /
           static_cast<double>(decodeTokens - 1);
}

ServingMetrics::ServingMetrics(Seconds slo_ttft, MetricsMemoryMode mode)
    : sloTtft_(slo_ttft), mode_(mode)
{
    LAER_CHECK(slo_ttft > 0.0, "TTFT SLO must be positive");
}

void
ServingMetrics::record(const Request &request)
{
    LAER_CHECK(request.phase() == RequestPhase::Finished,
               "only finished requests carry complete latencies");
    ++completed_;
    decodedTokens_ += request.decodeTokens;
    if (mode_ == MetricsMemoryMode::Exact) {
        ttfts_.push_back(request.ttft());
        if (request.decodeTokens >= 2)
            tpots_.push_back(request.tpot());
    } else {
        ttftStream_.add(request.ttft());
        if (request.decodeTokens >= 2)
            tpotStream_.add(request.tpot());
    }
    if (request.ttft() <= sloTtft_) {
        ++sloMet_;
        goodTokens_ += request.decodeTokens;
    }
}

void
ServingMetrics::recordPreemption(int slo_class)
{
    LAER_CHECK(slo_class >= 0, "negative SLO class");
    if (static_cast<std::size_t>(slo_class) >= preemptionsByClass_.size())
        preemptionsByClass_.resize(slo_class + 1, 0);
    ++preemptionsByClass_[slo_class];
}

void
ServingMetrics::recordKvUtilization(double utilization)
{
    if (mode_ == MetricsMemoryMode::Exact)
        kvUtil_.push_back(utilization);
    else
        kvUtilStream_.add(utilization);
}

void
ServingMetrics::recordAttribution(int slo_class,
                                  const AttrBreakdown &e2e)
{
    LAER_CHECK(slo_class >= 0, "negative SLO class");
    if (static_cast<std::size_t>(slo_class) >= attr_.size())
        attr_.resize(slo_class + 1);
    auto &per_class = attr_[slo_class];
    for (int i = 0; i < kNumAttrComponents; ++i) {
        AttrAgg &agg = per_class[i];
        const double x = e2e.components[i];
        if (mode_ == MetricsMemoryMode::Exact)
            agg.samples.push_back(x);
        else
            agg.stream.add(x);
        ++agg.count;
        agg.sum += x;
        if (agg.count == 1 || x > agg.max)
            agg.max = x;
    }
}

std::vector<std::array<AttributionComponentStats, kNumAttrComponents>>
ServingMetrics::attributionByClass() const
{
    std::vector<std::array<AttributionComponentStats,
                           kNumAttrComponents>>
        out(attr_.size());
    for (std::size_t c = 0; c < attr_.size(); ++c) {
        for (int i = 0; i < kNumAttrComponents; ++i) {
            const AttrAgg &agg = attr_[c][i];
            AttributionComponentStats &stats = out[c][i];
            stats.count = agg.count;
            if (agg.count == 0)
                continue;
            stats.mean = agg.sum / static_cast<double>(agg.count);
            stats.max = agg.max;
            if (mode_ == MetricsMemoryMode::Exact) {
                stats.p50 = percentile(agg.samples, 50.0);
                stats.p95 = percentile(agg.samples, 95.0);
                stats.p99 = percentile(agg.samples, 99.0);
            } else {
                stats.p50 = agg.stream.quantile(50.0);
                stats.p95 = agg.stream.quantile(95.0);
                stats.p99 = agg.stream.quantile(99.0);
            }
        }
    }
    return out;
}

std::int64_t
ServingMetrics::totalPreemptions() const
{
    std::int64_t n = 0;
    for (const std::int64_t c : preemptionsByClass_)
        n += c;
    return n;
}

std::int64_t
ServingMetrics::preemptions(int slo_class) const
{
    if (slo_class < 0 ||
        static_cast<std::size_t>(slo_class) >= preemptionsByClass_.size())
        return 0;
    return preemptionsByClass_[slo_class];
}

double
ServingMetrics::meanKvUtilization() const
{
    if (mode_ == MetricsMemoryMode::Streaming)
        return kvUtilStream_.mean();
    return mean(kvUtil_);
}

double
ServingMetrics::peakKvUtilization() const
{
    if (mode_ == MetricsMemoryMode::Streaming)
        return kvUtilStream_.max();
    return maxOf(kvUtil_);
}

Seconds
ServingMetrics::ttftPercentile(double p) const
{
    if (mode_ == MetricsMemoryMode::Streaming)
        return ttftStream_.quantile(p);
    return percentile(ttfts_, p);
}

Seconds
ServingMetrics::tpotPercentile(double p) const
{
    if (mode_ == MetricsMemoryMode::Streaming)
        return tpotStream_.quantile(p);
    return percentile(tpots_, p);
}

double
ServingMetrics::throughput(Seconds elapsed) const
{
    return elapsed > 0.0 ? static_cast<double>(decodedTokens_) / elapsed
                         : 0.0;
}

double
ServingMetrics::goodput(Seconds elapsed) const
{
    return elapsed > 0.0 ? static_cast<double>(goodTokens_) / elapsed
                         : 0.0;
}

} // namespace laer
