/**
 * @file
 * Open-loop request arrival processes for the serving simulator.
 *
 * Serving workloads differ from training exactly where it hurts a
 * static layout: load is bursty and non-stationary. Three generators
 * are provided, all driven by core/rng so a fixed seed reproduces the
 * identical request stream bit-for-bit:
 *
 *  - Poisson: memoryless arrivals at a constant mean rate — the
 *    queueing-theory baseline.
 *  - Bursty: a two-state Markov-modulated Poisson process (MMPP).
 *    The process alternates between a quiet state and a burst state
 *    whose rate is `burstFactor` times higher; state holding times are
 *    exponential. The mean rate over time equals `ratePerSec`.
 *  - Diurnal: a non-homogeneous Poisson process with sinusoidal rate
 *    lambda(t) = rate * (1 + amplitude * sin(2 pi t / period)),
 *    sampled by Lewis-Shedler thinning — a compressed day/night cycle.
 *
 * Prompt and output lengths are geometric-tailed (exponential rounded
 * up), matching the heavy right tail of production traces.
 */

#ifndef LAER_SERVE_ARRIVAL_HH
#define LAER_SERVE_ARRIVAL_HH

#include <cstdint>

#include "core/rng.hh"
#include "serve/request.hh"

namespace laer
{

/** Shape of the arrival process. */
enum class ArrivalKind
{
    Poisson, //!< constant-rate, memoryless
    Bursty,  //!< two-state MMPP
    Diurnal, //!< sinusoidal rate, thinned
};

/** Printable arrival-kind name. */
const char *arrivalKindName(ArrivalKind kind);

/** Arrival-process and request-shape knobs. */
struct ArrivalConfig
{
    ArrivalKind kind = ArrivalKind::Poisson;
    double ratePerSec = 16.0;     //!< long-run mean request rate

    double burstFactor = 4.0;     //!< burst rate / mean rate (Bursty)
    double burstFraction = 0.15;  //!< fraction of time in burst state
    double burstHold = 2.0;       //!< mean seconds per burst episode

    double diurnalPeriod = 120.0; //!< seconds per synthetic "day"
    double diurnalAmplitude = 0.6;//!< rate swing in [0, 1)

    TokenCount meanPrefillTokens = 512; //!< mean prompt length
    TokenCount meanDecodeTokens = 128;  //!< mean output length
    TokenCount minPrefillTokens = 8;    //!< floor on prompt length
    TokenCount minDecodeTokens = 2;     //!< floor on output length

    int numSloClasses = 1;        //!< priority classes, drawn uniformly
    std::uint64_t seed = 42;
};

/**
 * Stateful generator; next() returns requests with strictly
 * increasing arrival timestamps and fresh ids.
 */
class ArrivalProcess
{
  public:
    explicit ArrivalProcess(const ArrivalConfig &config);

    /**
     * Generate the next request of the stream.
     * @return a request with a fresh id and an arrival time strictly
     *         after every previously generated one.
     */
    Request next();

    /** Config in force. */
    const ArrivalConfig &config() const { return config_; }

    /** Arrival time of the last generated request. */
    Seconds now() const { return now_; }

  private:
    /** Seconds until the next arrival, per the configured process. */
    Seconds nextGap();

    ArrivalConfig config_;
    Rng rng_;
    Seconds now_ = 0.0;
    int nextId_ = 0;
    bool bursting_ = false;  //!< MMPP state
    Seconds stateEnd_ = 0.0; //!< MMPP next state flip
};

} // namespace laer

#endif // LAER_SERVE_ARRIVAL_HH
