#include "serve/kv_cache.hh"

#include <algorithm>

#include "core/error.hh"

namespace laer
{

Bytes
kvBytesPerToken(const ModelConfig &cfg)
{
    return 2LL * cfg.layers * cfg.numKvHeads * cfg.headDim *
           cfg.bytesPerParam;
}

ServingMemoryBudget
servingMemoryBudget(const ModelConfig &cfg, int n_devices, int capacity,
                    Bytes hbm_per_device,
                    TokenCount step_tokens_per_device)
{
    LAER_CHECK(n_devices >= 1, "need at least one device");
    LAER_CHECK(hbm_per_device > 0, "HBM budget must be positive");
    LAER_CHECK(step_tokens_per_device >= 1,
               "step token share must be positive");

    ServingMemoryBudget budget;
    budget.modelState = inferenceModelState(cfg, n_devices, capacity);
    // Inference frees activations layer by layer, so the live set is
    // one layer's share of the training-mode per-token estimate.
    budget.activationReserve =
        step_tokens_per_device *
        (activationBytesPerToken(cfg, false) / cfg.layers);

    const Bytes used =
        budget.modelState.total() + budget.activationReserve;
    LAER_CHECK(used < hbm_per_device,
               "HBM budget ("
                   << hbm_per_device << " B/device) leaves no KV pool: "
                   << "model state + activations need " << used
                   << " B/device");
    budget.kvPoolPerDevice = hbm_per_device - used;
    budget.kvPoolTotal = budget.kvPoolPerDevice * n_devices;
    return budget;
}

KvCachePool::KvCachePool(Bytes budget_bytes, Bytes bytes_per_token,
                         TokenCount block_tokens)
    : budget_(budget_bytes), bytesPerToken_(bytes_per_token),
      blockTokens_(block_tokens)
{
    LAER_CHECK(budget_ > 0, "KV budget must be positive");
    LAER_CHECK(bytesPerToken_ > 0, "KV bytes per token must be positive");
    LAER_CHECK(blockTokens_ >= 1, "KV block must hold at least one token");
}

Bytes
KvCachePool::bytesFor(TokenCount context) const
{
    LAER_CHECK(context >= 0, "negative context length");
    const TokenCount blocks =
        (context + blockTokens_ - 1) / blockTokens_;
    return blocks * blockTokens_ * bytesPerToken_;
}

bool
KvCachePool::canGrow(int id, TokenCount context) const
{
    const Bytes target = bytesFor(context);
    const Bytes held = reservedOf(id);
    return target <= held || target - held <= freeBytes();
}

void
KvCachePool::grow(int id, TokenCount context)
{
    const Bytes target = bytesFor(context);
    auto [it, inserted] = perSeq_.try_emplace(id, 0);
    if (target <= it->second)
        return; // reservation already covers the context
    const Bytes delta = target - it->second;
    LAER_CHECK(delta <= freeBytes(),
               "KV pool over-commit: sequence " << id << " needs "
                   << delta << " B but only " << freeBytes()
                   << " B are free");
    it->second = target;
    reserved_ += delta;
    peakReserved_ = std::max(peakReserved_, reserved_);
    ++growOps_;
}

void
KvCachePool::setBudget(Bytes budget_bytes)
{
    LAER_CHECK(budget_bytes > 0, "KV budget must be positive");
    LAER_CHECK(reserved_ <= budget_bytes,
               "KV pool shrink below reserved bytes: " << reserved_
                   << " B reserved, new budget " << budget_bytes
                   << " B — evict first");
    budget_ = budget_bytes;
}

void
KvCachePool::release(int id)
{
    const auto it = perSeq_.find(id);
    if (it == perSeq_.end())
        return;
    reserved_ -= it->second;
    perSeq_.erase(it);
    ++releaseOps_;
}

bool
KvCachePool::tracks(int id) const
{
    return perSeq_.count(id) != 0;
}

Bytes
KvCachePool::reservedOf(int id) const
{
    const auto it = perSeq_.find(id);
    return it == perSeq_.end() ? 0 : it->second;
}

double
KvCachePool::utilization() const
{
    return static_cast<double>(reserved_) / static_cast<double>(budget_);
}

} // namespace laer
