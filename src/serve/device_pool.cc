#include "serve/device_pool.hh"

#include <algorithm>

#include "comm/collectives.hh"
#include "core/error.hh"

namespace laer
{

DevicePoolSlice
wholeClusterSlice(const Cluster &cluster, const std::string &name)
{
    return DevicePoolSlice(name, 0, cluster.numDevices(), cluster);
}

std::vector<DevicePoolSlice>
partitionCluster(const Cluster &cluster, const std::vector<int> &counts,
                 const std::vector<std::string> &names)
{
    LAER_CHECK(!counts.empty(), "partition needs at least one slice");
    LAER_CHECK(counts.size() == names.size(),
               "need one name per slice (" << counts.size() << " counts, "
                                           << names.size() << " names)");
    int total = 0;
    for (const int c : counts) {
        LAER_CHECK(c >= 1, "every slice needs at least one device");
        total += c;
    }
    LAER_CHECK(total == cluster.numDevices(),
               "slice sizes sum to " << total << " but the cluster has "
                                     << cluster.numDevices()
                                     << " devices");

    std::vector<DevicePoolSlice> slices;
    slices.reserve(counts.size());
    DeviceId first = 0;
    for (std::size_t i = 0; i < counts.size(); ++i) {
        slices.emplace_back(names[i], first, counts[i],
                            cluster.contiguousSlice(first, counts[i]));
        first += counts[i];
    }
    return slices;
}

Seconds
kvTransferTime(const Cluster &cluster, const DevicePoolSlice &src,
               const DevicePoolSlice &dst, Bytes bytes)
{
    LAER_CHECK(bytes >= 0, "negative transfer volume");
    LAER_CHECK(src.count >= 1 && dst.count >= 1,
               "transfer between empty pools");
    // The KV is sharded across the source pool; each source device
    // streams its shard to a peer in the destination, so min(|src|,
    // |dst|) links drain in parallel. The boundary devices decide the
    // link class: pools carved from one node move KV over NVLink,
    // pools on different nodes over the NIC.
    const int links = std::min(src.count, dst.count);
    const double link_bw =
        cluster.sameNode(src.endDevice() - 1, dst.firstDevice)
            ? cluster.intraBw()
            : cluster.interBw();
    return kCollectiveAlpha +
           static_cast<double>(bytes) / (links * link_bw);
}

} // namespace laer
