#include "serve/arrival.hh"

#include <cmath>

#include "core/error.hh"

namespace laer
{

namespace
{

/** Exponential variate with the given mean (inverse-CDF). */
Seconds
exponential(Rng &rng, double mean)
{
    double u = rng.uniform();
    while (u <= 1e-300)
        u = rng.uniform();
    return -std::log(u) * mean;
}

/** Geometric-tailed length draw: floor + exponential remainder. */
TokenCount
lengthDraw(Rng &rng, TokenCount mean, TokenCount floor_len)
{
    if (mean <= floor_len)
        return floor_len;
    const double tail =
        exponential(rng, static_cast<double>(mean - floor_len));
    return floor_len + static_cast<TokenCount>(std::llround(tail));
}

} // namespace

const char *
arrivalKindName(ArrivalKind kind)
{
    switch (kind) {
      case ArrivalKind::Poisson:
        return "poisson";
      case ArrivalKind::Bursty:
        return "bursty";
      case ArrivalKind::Diurnal:
        return "diurnal";
    }
    return "?";
}

ArrivalProcess::ArrivalProcess(const ArrivalConfig &config)
    : config_(config), rng_(config.seed)
{
    LAER_CHECK(config_.ratePerSec > 0.0, "arrival rate must be positive");
    LAER_CHECK(config_.meanPrefillTokens >= 1 &&
                   config_.meanDecodeTokens >= 1,
               "mean request lengths must be positive");
    LAER_CHECK(config_.numSloClasses >= 1, "need at least one SLO class");
    if (config_.kind == ArrivalKind::Bursty) {
        LAER_CHECK(config_.burstFactor >= 1.0,
                   "burst factor must be >= 1");
        LAER_CHECK(config_.burstFraction > 0.0 &&
                       config_.burstFraction < 1.0,
                   "burst fraction must be in (0, 1)");
        LAER_CHECK(config_.burstHold > 0.0,
                   "burst hold time must be positive");
        // The state machine flips whenever time crosses stateEnd_.
        // Seeding it in the burst state with a boundary at t = 0 makes
        // the stream open in the quiet state with a fresh holding time.
        bursting_ = true;
    }
    if (config_.kind == ArrivalKind::Diurnal) {
        LAER_CHECK(config_.diurnalAmplitude >= 0.0 &&
                       config_.diurnalAmplitude < 1.0,
                   "diurnal amplitude must be in [0, 1)");
        LAER_CHECK(config_.diurnalPeriod > 0.0,
                   "diurnal period must be positive");
    }
}

Seconds
ArrivalProcess::nextGap()
{
    switch (config_.kind) {
      case ArrivalKind::Poisson:
        return exponential(rng_, 1.0 / config_.ratePerSec);

      case ArrivalKind::Bursty: {
        // Quiet-state rate chosen so the long-run mean is ratePerSec.
        const double f = config_.burstFraction;
        const double quiet_rate =
            config_.ratePerSec / (1.0 - f + f * config_.burstFactor);
        const double burst_rate = quiet_rate * config_.burstFactor;
        const double quiet_hold = config_.burstHold * (1.0 - f) / f;

        Seconds t = now_;
        for (;;) {
            const double rate = bursting_ ? burst_rate : quiet_rate;
            const Seconds gap = exponential(rng_, 1.0 / rate);
            if (t + gap <= stateEnd_)
                return (t + gap) - now_;
            // Crossed a state boundary: discard the draw (memoryless),
            // flip the state, and continue from the boundary.
            t = stateEnd_;
            bursting_ = !bursting_;
            stateEnd_ = t + exponential(rng_, bursting_ ? config_.burstHold
                                                        : quiet_hold);
        }
      }

      case ArrivalKind::Diurnal: {
        // Lewis-Shedler thinning against the peak rate.
        const double peak =
            config_.ratePerSec * (1.0 + config_.diurnalAmplitude);
        Seconds t = now_;
        for (;;) {
            t += exponential(rng_, 1.0 / peak);
            const double lambda =
                config_.ratePerSec *
                (1.0 + config_.diurnalAmplitude *
                           std::sin(2.0 * kPi * t /
                                    config_.diurnalPeriod));
            if (rng_.uniform() * peak <= lambda)
                return t - now_;
        }
      }
    }
    panic("unreachable arrival kind");
}

Request
ArrivalProcess::next()
{
    now_ += nextGap();
    Request r;
    r.id = nextId_++;
    r.arrival = now_;
    r.prefillTokens = lengthDraw(rng_, config_.meanPrefillTokens,
                                 config_.minPrefillTokens);
    r.decodeTokens = lengthDraw(rng_, config_.meanDecodeTokens,
                                config_.minDecodeTokens);
    r.sloClass = config_.numSloClasses == 1
                     ? 0
                     : rng_.uniformInt(0, config_.numSloClasses - 1);
    return r;
}

} // namespace laer
