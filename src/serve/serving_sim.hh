/**
 * @file
 * End-to-end continuous-batching MoE inference-serving simulator.
 *
 * The serving loop mirrors the training runtime's division of labour
 * (paper Fig. 7) under an open-loop request stream instead of fixed
 * micro-batches: an ArrivalProcess offers requests, the
 * ContinuousBatcher assembles each engine step under a token budget,
 * the drifting RoutingGenerator gates the step's tokens onto experts,
 * the active layout policy decides where expert replicas live, and
 * the discrete-event engine prices the step (attention, token
 * All-to-All dispatch/combine, expert FFN) on the cluster topology.
 *
 * Layout policies:
 *  - LaerServe: the paper's layout tuner (Alg. 2) re-tunes every
 *    `retunePeriod` steps from the routing aggregated over the last
 *    window — asynchronously, exactly as the training-side CPU solver
 *    does, so no stall is charged (FSEP restores replicas from shards
 *    under the ongoing steps).
 *  - StaticEp: the fixed vanilla-EP placement; hot experts queue.
 *  - FlexMoe: incremental replica adjustment with migration penalties
 *    charged on the serving critical path.
 *
 * Reported metrics are the serving-world equivalents of the paper's
 * iteration time: TTFT/TPOT percentiles, throughput, and
 * SLO-conditioned goodput.
 */

#ifndef LAER_SERVE_SERVING_SIM_HH
#define LAER_SERVE_SERVING_SIM_HH

#include <memory>
#include <vector>

#include "baselines/flexmoe.hh"
#include "baselines/static_ep.hh"
#include "model/config.hh"
#include "planner/layout_tuner.hh"
#include "serve/arrival.hh"
#include "serve/batcher.hh"
#include "serve/request.hh"
#include "topo/cluster.hh"
#include "trace/routing_generator.hh"

namespace laer
{

/** Expert-placement policies compared by the serving benches. */
enum class ServingPolicy
{
    LaerServe, //!< async layout tuner re-runs on live routing
    StaticEp,  //!< fixed vanilla EP placement
    FlexMoe,   //!< incremental adjustment with migration penalty
};

/** Printable policy name. */
const char *servingPolicyName(ServingPolicy policy);

/** Full configuration of one serving experiment. */
struct ServingConfig
{
    ModelConfig model;         //!< required; validate()d on start
    ServingPolicy policy = ServingPolicy::LaerServe;
    int capacity = 2;          //!< C, expert slots per device
    int simulatedLayers = 4;   //!< MoE layers carried through the DES
                               //!< (timing scales to model.layers)
    Seconds stepOverhead = 2e-3; //!< scheduler + launch cost per step
    /** Per-device HBM in bytes. When > 0 the simulator derives the
     * batcher's KV-cache pool from it (servingMemoryBudget): model
     * state + activation reserve come off the top, the rest is KV,
     * and admission/preemption run on bytes instead of maxRunning. */
    Bytes hbmPerDevice = 0;
    TokenCount kvBlockTokens = 16; //!< KV paged-allocation granularity
    ArrivalConfig arrival;
    BatcherConfig batcher;     //!< numDevices is filled in by the sim
    RoutingModel routing;      //!< drift/skew/jitter knobs; the
                               //!< device/expert/token counts are
                               //!< filled in by the simulator
    int retunePeriod = 16;     //!< LAER re-tune cadence, in steps
    TunerConfig tuner;         //!< LAER planner knobs
    int flexMaxMoves = 2;      //!< FlexMoE adjustments per step
    Seconds sloTtft = 0.5;     //!< TTFT target for goodput accounting
    Seconds horizon = 30.0;    //!< seconds of offered traffic
    std::uint64_t seed = 42;   //!< routing-generator seed base
};

/** Timing/accounting of one engine step. */
struct ServingStepResult
{
    Seconds start = 0.0;       //!< simulated step start time
    Seconds duration = 0.0;    //!< end-to-end step seconds
    TokenCount tokens = 0;     //!< scheduled tokens (prefill + decode)
    TokenCount prefill = 0;
    TokenCount decode = 0;
    Seconds a2aBusy = 0.0;     //!< dispatch+combine busy per device
    Seconds expertBusy = 0.0;  //!< expert FFN busy per device (mean)
    Seconds othersBusy = 0.0;  //!< attention/gate busy per device
    Seconds migration = 0.0;   //!< baseline re-layout overhead
    double maxRelTokens = 0.0; //!< mean over layers of max/mean recv
    bool retuned = false;      //!< LAER applied a fresh layout
    double kvUtilization = 0.0; //!< KV pool reserved/budget after the
                                //!< step was planned (0 when disabled)
    int preemptions = 0;        //!< evictions while planning this step
};

/** Summary of a full serving run. */
struct ServingReport
{
    ServingPolicy policy = ServingPolicy::LaerServe;
    std::int64_t offered = 0;   //!< requests admitted before horizon
    std::int64_t completed = 0;
    std::int64_t sloMet = 0;    //!< completions with TTFT <= SLO
    int steps = 0;
    int retunes = 0;
    Seconds elapsed = 0.0;      //!< simulated end of the run
    Seconds ttftP50 = 0.0, ttftP90 = 0.0, ttftP99 = 0.0;
    Seconds tpotP50 = 0.0, tpotP99 = 0.0;
    double throughputTps = 0.0; //!< decode tokens / second
    double goodputTps = 0.0;    //!< SLO-attained decode tokens / second
    double meanBatchTokens = 0.0;
    Seconds meanStepTime = 0.0;
    double meanMaxRelTokens = 0.0; //!< expert-load imbalance proxy
    Seconds migrationTotal = 0.0;
    Bytes kvBudgetBytes = 0;       //!< pool size; 0 = KV model off
    std::int64_t preemptions = 0;  //!< recompute-style evictions
    std::vector<std::int64_t> preemptionsByClass; //!< per SLO class
    double meanKvUtilization = 0.0;
    double peakKvUtilization = 0.0;
};

/**
 * The simulator. step() advances one engine step (or jumps to the
 * next arrival when idle); run() plays the whole horizon and drains.
 */
class ServingSimulator
{
  public:
    ServingSimulator(const Cluster &cluster, const ServingConfig &config);
    ~ServingSimulator();

    /**
     * Advance the simulation: admit due arrivals, execute one engine
     * step if there is work, otherwise jump to the next arrival.
     * @return false once the horizon has passed and all work drained.
     */
    bool step();

    /**
     * Play the configured horizon to completion.
     * @return the aggregated report of the finished run.
     */
    ServingReport run();

    /** Current simulated time. */
    Seconds now() const { return now_; }

    /** Latency collector (valid during and after a run). */
    const ServingMetrics &metrics() const { return metrics_; }

    /** Per-step results recorded so far. */
    const std::vector<ServingStepResult> &stepResults() const
    {
        return steps_;
    }

    const ServingConfig &config() const { return config_; }

  private:
    /** Admit every arrival due at or before now_ (horizon-bounded). */
    void pumpArrivals();

    /** Price one planned step on the event engine. */
    ServingStepResult executeStep(const BatchPlan &plan);

    /** Refresh layouts per the active policy; returns migration cost. */
    Seconds updateLayouts(const std::vector<RoutingMatrix> &routing,
                          ServingStepResult &result);

    const Cluster &cluster_;
    ServingConfig config_;
    ContinuousBatcher batcher_;
    ArrivalProcess arrivals_;
    ServingMetrics metrics_;
    Request lookahead_;          //!< next not-yet-due arrival
    bool lookaheadValid_ = false;
    bool offeringClosed_ = false;
    Seconds now_ = 0.0;
    int stepIndex_ = 0;
    int retunes_ = 0;
    std::int64_t offered_ = 0;

    EpGrouping grouping_;        //!< StaticEp group structure
    std::vector<RoutingGenerator> generators_; //!< one per sim layer
    std::vector<ExpertLayout> layouts_;        //!< per sim layer
    std::vector<RoutingMatrix> aggRouting_;    //!< LAER window sums
    std::vector<std::unique_ptr<FlexMoePlanner>> flexPlanners_;
    std::vector<ServingStepResult> steps_;
};

} // namespace laer

#endif // LAER_SERVE_SERVING_SIM_HH
