/**
 * @file
 * End-to-end continuous-batching MoE inference-serving simulator.
 *
 * The serving loop mirrors the training runtime's division of labour
 * (paper Fig. 7) under an open-loop request stream instead of fixed
 * micro-batches: an ArrivalProcess offers requests, and one or more
 * `ServingEngine`s — each bound to a `DevicePoolSlice` of the cluster
 * with its own batcher, KV pool and layout policy — plan, price and
 * commit engine steps on their sub-topologies. The simulator is the
 * event loop that advances simulated time across the engines and
 * moves requests between them.
 *
 * Policies (ServingPolicy, serve/engine.hh):
 *  - LaerServe / StaticEp / FlexMoe: one whole-cluster engine running
 *    the respective expert-placement policy, exactly the PR 1-2
 *    behaviour.
 *  - Aggregated + ReplicaConfig slicing: N whole-model replica
 *    engines on equal cluster slices, arrivals dispatched to the
 *    least-loaded live replica. The live count is a runtime quantity:
 *    the control plane (src/ctrl/) scales it through
 *    requestReplicas(), each engine walking the
 *    Loading/Active/Draining/Stopped lifecycle, with spin-ups priced
 *    as a model load over the host link and drained requests re-homed
 *    onto the survivors.
 *  - Disaggregated: a prefill pool and a decode pool. Arrivals enter
 *    the prefill pool (chunked prefill only; the completing step emits
 *    the first token); the finished context's KV — contextLength *
 *    kvBytesPerToken bytes — is then transferred to the decode pool
 *    over the inter-pool links (serve/device_pool.hh), where
 *    admission is driven by the transferred-context bytes against the
 *    decode pool's own KvCachePool. A transferred context stuck at
 *    the decode pool's door back-pressures the prefill pool by
 *    pausing its admission. Each pool runs its own LAER tuner
 *    (`disagg.sharedLayout = false`) or the decode pool tunes one
 *    layout from the combined traffic that the prefill pool adopts
 *    (`true`).
 *
 * Reported metrics are the serving-world equivalents of the paper's
 * iteration time: TTFT/TPOT percentiles, throughput, SLO-conditioned
 * goodput, and — per pool — KV utilization, preemptions and step
 * counts, plus the KV transfer volume/time and transfer-stall time of
 * a disaggregated run.
 */

#ifndef LAER_SERVE_SERVING_SIM_HH
#define LAER_SERVE_SERVING_SIM_HH

#include <deque>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "core/event_calendar.hh"
#include "core/stats.hh"
#include "fault/fault.hh"
#include "model/config.hh"
#include "model/memory.hh"
#include "obs/obs.hh"
#include "planner/layout_tuner.hh"
#include "serve/arrival.hh"
#include "serve/batcher.hh"
#include "serve/device_pool.hh"
#include "serve/engine.hh"
#include "serve/request.hh"
#include "topo/cluster.hh"
#include "trace/routing_generator.hh"

namespace laer
{

/** Prefill/decode disaggregation knobs (policy == Disaggregated). */
struct DisaggConfig
{
    /** Devices in the prefill pool; 0 picks half the cluster. The
     * decode pool owns the rest. Each pool must be node-regular and
     * large enough to host every expert. */
    int prefillDevices = 0;

    /** False: each pool runs its own LAER tuner on its own traffic.
     * True: the decode pool tunes one layout from the combined
     * prefill + decode routing and the prefill pool adopts it
     * (requires equal pool sizes). */
    bool sharedLayout = false;

    /** Expert-placement policy inside each pool. */
    ServingPolicy poolPolicy = ServingPolicy::LaerServe;
};

/**
 * Replica-autoscaling knobs (aggregated policies only). With
 * `replicaDevices > 0` the cluster divides into equal contiguous
 * slices, each a full model replica running the configured policy;
 * arrivals go to the least-loaded live replica, and the control plane
 * (src/ctrl/) can scale the live count at runtime. Spinning a replica
 * up charges a model-load delay: the slice's per-device inference
 * model state (model/memory.hh) restored over the host link.
 */
struct ReplicaConfig
{
    /** Devices per replica slice; 0 keeps the classic single
     * whole-cluster engine. Must divide the cluster, keep slices
     * node-regular, and give each replica room for every expert. */
    int replicaDevices = 0;

    /** Replicas live at t = 0; 0 means all slices start live. */
    int initialReplicas = 0;
};

/** Full configuration of one serving experiment. */
struct ServingConfig
{
    ModelConfig model;         //!< required; validate()d on start
    ServingPolicy policy = ServingPolicy::LaerServe;
    int capacity = 2;          //!< C, expert slots per device
    int simulatedLayers = 4;   //!< MoE layers carried through the DES
                               //!< (timing scales to model.layers)
    Seconds stepOverhead = 2e-3; //!< scheduler + launch cost per step
    /** Per-device HBM in bytes. When > 0 the simulator derives each
     * pool's KV-cache pool from it (servingMemoryBudget): model
     * state + activation reserve come off the top, the rest is KV,
     * and admission/preemption run on bytes instead of maxRunning. */
    Bytes hbmPerDevice = 0;
    TokenCount kvBlockTokens = 16; //!< KV paged-allocation granularity
    ArrivalConfig arrival;
    BatcherConfig batcher;     //!< numDevices is filled in by the sim;
                               //!< multi-pool runs split tokenBudget
                               //!< and kvBudgetBytes by device share
    RoutingModel routing;      //!< drift/skew/jitter knobs; the
                               //!< device/expert/token counts are
                               //!< filled in by the simulator
    int retunePeriod = 16;     //!< LAER re-tune cadence, in steps
    TunerConfig tuner;         //!< LAER planner knobs
    int flexMaxMoves = 2;      //!< FlexMoE adjustments per step
    DisaggConfig disagg;       //!< pool split (Disaggregated only)
    ReplicaConfig replicas;    //!< replica slicing (aggregated only)
    /** Fault-injection plan (src/fault/). Strictly opt-in: with
     * `faults.enabled()` false (the default) no fault code path runs
     * and the simulation stays byte-for-byte with its history. */
    FaultConfig faults;
    double hostLinkBw = kHostLinkBw; //!< PCIe rate for swap preemption
                               //!< and control-plane model loads
    Seconds sloTtft = 0.5;     //!< TTFT target for goodput accounting
    Seconds horizon = 30.0;    //!< seconds of offered traffic
    std::uint64_t seed = 42;   //!< routing-generator seed base
    /** Worker threads for the per-layer tune/route fan-out and the
     * tuner's scheme set (core/thread_pool.hh): 1 = serial (default),
     * 0 = hardware concurrency. Results are identical for any value;
     * only wall time changes. */
    int threads = 1;
    /** Wall-clock budget per LAER retune in milliseconds; 0 disables
     * the check. Overruns are reported per retune in ServingReport
     * (the planner must stay inside the budget for async re-layout
     * to hide behind serving steps at 512-1024 devices). */
    double tunerBudgetMs = 0.0;
    /** Windowed share-nothing event core (docs/PERF.md): between
     * control barriers (setBarrier()) and snapshot boundaries, the
     * engines advance independently over `threads` workers against
     * per-window pre-binned arrivals; metrics/trace emission is
     * buffered per engine and merged in deterministic (time, engine)
     * order at the window end. Results are bit-identical for ANY
     * thread count (the serial-vs-parallel-des difftest lane), but NOT
     * to the default per-event core: arrivals dispatch against
     * window-start replica loads instead of per-arrival live loads.
     * While a reconfiguration is in flight the simulator falls back to
     * the per-event path, so autoscaled runs stay exact. Requires a
     * non-disaggregated policy. Default off — the default path stays
     * byte-for-byte with its history. */
    bool desParallel = false;

    // ---- observability (src/obs/, docs/OBSERVABILITY.md) ----------
    // All of it is strictly write-only: recorders are never read back,
    // so attaching them cannot change a single simulated number, and
    // leaving them null (the default) skips every emission behind one
    // pointer test.

    /** Optional trace recorder: step/retune/KV-transfer/drain spans
     * and admission/preemption/scaling instants land here. Non-owning;
     * the caller writes the file after the run. */
    TraceRecorder *trace = nullptr;
    /** Optional metrics registry fed by the run's counters, gauges and
     * histograms. Non-owning; the caller exports it after the run. */
    MetricsRegistry *metricsRegistry = nullptr;
    /** Optional per-request lifecycle recorder (obs/req_trace.hh): a
     * deterministic 1-in-N sample of requests gets an ordered event
     * timeline, an exact additive TTFT/E2E attribution folded into
     * ServingMetrics per class, Perfetto per-request tracks + flow
     * events (when `trace` is also attached), and membership in the
     * top-K SLO-miss report. Non-owning; write-only like the rest. */
    ReqTraceRecorder *reqTrace = nullptr;
    /** Simulated seconds between CounterSnapshot recordings into
     * `metricsRegistry`; 0 records only the final snapshot. */
    Seconds snapshotInterval = 0.0;
    /** Sample-storage discipline of the run's ServingMetrics; Exact
     * (default) keeps historical bit-identical percentiles, Streaming
     * bounds memory for million-request sweeps. */
    MetricsMemoryMode metricsMode = MetricsMemoryMode::Exact;
    /** Prefix for trace track names ("AutoReplica@35" ->
     * "AutoReplica@35/replica0"), so several runs of one bench can
     * share a recorder without colliding tracks. */
    std::string obsLabel;
    /** Record per-phase wall-time self-profiling (step pricing vs
     * retune solver vs event loop) into the report and registry. */
    bool selfProfile = false;
};

/** Per-pool slice of a run's summary. */
struct PoolReport
{
    std::string name;           //!< "serve", "prefill", "decode"
    int devices = 0;            //!< pool size
    Bytes kvBudgetBytes = 0;    //!< pool's KV budget; 0 = KV model off
    int steps = 0;              //!< engine steps the pool executed
    std::int64_t preemptions = 0;
    double meanKvUtilization = 0.0;
    double peakKvUtilization = 0.0;
};

/** One control-plane reconfiguration on the run's timeline. */
struct ScalingEvent
{
    Seconds requested = 0.0; //!< decision time
    Seconds applied = 0.0;   //!< drains done / capacity usable
    std::string action;      //!< "replicas" or "split"
    int before = 0;          //!< replica count, or prefill devices
    int after = 0;
    Seconds loadDelay = 0.0; //!< model (re)shard time over hostLinkBw
    int rehomed = 0;         //!< live requests drained + re-enqueued
};

/** One control-loop decision window, recorded into the report so a
 * run carries its replica/split time series. */
struct ControlWindowSample
{
    Seconds start = 0.0;
    Seconds end = 0.0;
    double arrivalRate = 0.0;   //!< offered requests/s in the window
    int activeReplicas = 0;     //!< live engines at window close
    int prefillDevices = 0;     //!< current split (Disaggregated); 0 else
    int queueDepth = 0;         //!< waiting requests across pools
    double kvUtilization = 0.0; //!< max pool KV utilization at close
    Seconds ttftP95 = 0.0;      //!< over the window's completions
    Seconds tpotP95 = 0.0;
};

/** Availability section of a faulted run's report (all zero /
 * empty when ServingConfig::faults is disabled). */
struct AvailabilityReport
{
    std::int64_t faultsInjected = 0;  //!< fault events applied
    std::int64_t repairs = 0;         //!< fault-killed replicas rebuilt
    std::int64_t requestsRetried = 0; //!< backoff re-queues scheduled
    std::int64_t requestsFailed = 0;  //!< retry budget exhausted
    std::int64_t transfersAborted = 0; //!< KV transfers cut by a dead link
    Seconds mttrMean = 0.0;   //!< mean fault -> Active-again time
    Seconds mttrMax = 0.0;    //!< worst repair
    Seconds degradedSeconds = 0.0; //!< time with any fault active
    double degradedGoodputTps = 0.0; //!< goodput while degraded
    std::vector<std::int64_t> failedByClass; //!< per SLO class
    std::vector<FaultEvent> timeline; //!< applied events, in order
};

/** Summary of a full serving run. */
struct ServingReport
{
    ServingPolicy policy = ServingPolicy::LaerServe;
    std::int64_t offered = 0;   //!< requests admitted before horizon
    std::int64_t completed = 0;
    std::int64_t sloMet = 0;    //!< completions with TTFT <= SLO
    int steps = 0;
    int retunes = 0;
    Seconds elapsed = 0.0;      //!< simulated end of the run
    Seconds ttftP50 = 0.0, ttftP90 = 0.0, ttftP99 = 0.0;
    Seconds tpotP50 = 0.0, tpotP99 = 0.0;
    double throughputTps = 0.0; //!< decode tokens / second
    double goodputTps = 0.0;    //!< SLO-attained decode tokens / second
    double meanBatchTokens = 0.0;
    Seconds meanStepTime = 0.0;
    double meanMaxRelTokens = 0.0; //!< expert-load imbalance proxy
    Seconds migrationTotal = 0.0;
    Bytes kvBudgetBytes = 0;       //!< pool bytes summed; 0 = KV off
    std::int64_t preemptions = 0;  //!< evictions (recompute or swap)
    std::vector<std::int64_t> preemptionsByClass; //!< per SLO class
    double meanKvUtilization = 0.0; //!< over every pool's samples
    double peakKvUtilization = 0.0; //!< max over every pool's samples
    std::vector<PoolReport> pools;  //!< one entry per engine

    // Disaggregation accounting (zero for single-pool policies).
    std::int64_t migrated = 0;     //!< contexts moved prefill -> decode
    Bytes kvTransferBytes = 0;     //!< KV bytes across the pools
    Seconds kvTransferSeconds = 0.0; //!< wire time of those transfers
    Seconds transferStallSeconds = 0.0; //!< transferred contexts stuck
                                        //!< at the decode pool's door

    // Swap-preemption accounting (zero in recompute mode).
    Bytes swapOutBytes = 0;        //!< KV offloaded to host
    Bytes swapInBytes = 0;         //!< KV restored from host
    Seconds swapSeconds = 0.0;     //!< host-link time on the timeline

    // Planner wall-time accounting (real seconds, not simulated).
    double tunerBudgetMs = 0.0;    //!< configured per-retune budget
    double retuneWallMeanMs = 0.0; //!< mean solver wall time per retune
    double retuneWallMaxMs = 0.0;  //!< slowest retune
    int retuneBudgetOverruns = 0;  //!< retunes exceeding the budget
    std::vector<RetuneWallSample> retuneWall; //!< per retune, in
                                              //!< engine/step order

    // Control-plane accounting. Static runs carry no events or
    // windows and deviceSeconds = numDevices * elapsed.
    double deviceSeconds = 0.0;    //!< integral of powered devices
    std::vector<ScalingEvent> scalingEvents;
    std::vector<ControlWindowSample> windows;

    // Wall-time self-profile of the simulator process itself (real
    // milliseconds; zeros unless ServingConfig::selfProfile).
    double profStepPricingMs = 0.0; //!< executeStep() minus the solver
    double profRetuneMs = 0.0;      //!< LAER solver wall time
    double profEventLoopMs = 0.0;   //!< step() wall outside pricing

    /** Per-class latency-component summaries from sampled-request
     * attribution (index = SLO class); empty unless a
     * ReqTraceRecorder was attached and sampled retirements exist. */
    std::vector<std::array<AttributionComponentStats,
                           kNumAttrComponents>>
        attributionByClass;

    /** Fault/recovery accounting (zeros when faults are disabled). */
    AvailabilityReport availability;
};

/**
 * The simulator. step() advances the next engine step or event jump;
 * run() plays the whole horizon and drains every pool.
 */
class ServingSimulator
{
  public:
    ServingSimulator(const Cluster &cluster, const ServingConfig &config);
    ~ServingSimulator();

    /**
     * Advance the simulation: admit due arrivals and inter-pool
     * migrations, run every engine that is free and has work at the
     * current time, otherwise jump to the next event.
     * @return false once the horizon has passed and all work drained.
     */
    bool step();

    /**
     * Play the configured horizon to completion.
     * @return the aggregated report of the finished run.
     */
    ServingReport run();

    /**
     * Finalize a run that was driven via step() (the clock advances to
     * the last engine's finish, device-seconds close) and build its
     * report. run() is exactly `while (step()) {}` + finish().
     * @return the aggregated report.
     */
    ServingReport finish();

    // ---- control-plane hooks (src/ctrl/) ------------------------------

    /** Replica slots carved at construction (1 unless
     * ReplicaConfig::replicaDevices is set; 2 when disaggregated). */
    int replicaSlots() const { return static_cast<int>(engines_.size()); }

    /** Engines not Stopped — live replicas (or pools). */
    int activeReplicas() const;

    /** Devices in the prefill pool; 0 for non-disaggregated runs. */
    int prefillDevices() const;

    /** True while a requested reconfiguration has not fully applied
     * (an engine is still draining, or a split is pending). */
    bool reconfigPending() const;

    /**
     * Ask for `target` live replicas (replica mode only; clamped to
     * [1, replicaSlots()]). Scale-up activates stopped slices behind a
     * model-load delay; scale-down closes admission on the
     * highest-index live slices and drains each at its next idle
     * moment, re-homing live requests onto the surviving replicas.
     * @return true when a reconfiguration was initiated; false when
     *         the target is already met or another one is pending.
     */
    bool requestReplicas(int target);

    /**
     * Ask for a new prefill/decode device split (Disaggregated,
     * per-pool layouts only). Both pools stop admitting, drain at
     * their next idle step boundary (running sequences take the
     * recompute disposition), and the cluster re-partitions; both new
     * pools come back behind their model-reshard delay with fresh
     * layouts re-tuned from live traffic.
     * @param prefill_devices  Devices for the prefill pool; the split
     *                         must be node-regular and leave each pool
     *                         room for every expert.
     * @return true when initiated; false if already at the target, a
     *         reconfiguration is pending, or the split is infeasible.
     */
    bool requestSplit(int prefill_devices);

    /**
     * Smallest pool this run could operate: every expert must fit the
     * pool's slots AND, when the KV model is on, the pool's per-device
     * model shard + activation reserve must leave room for a KV pool
     * (shards grow as pools shrink). requestSplit() enforces this
     * floor; the control plane plans against it.
     */
    int minPoolDevices() const;

    /** Record one control-loop decision window into the report. */
    void recordControlWindow(const ControlWindowSample &sample);

    /**
     * Cap the windowed event core's next advancement window at `t`
     * (ctrl/control_loop.cc calls this with its next decision
     * boundary, so no window ever crosses a decision point). Must be
     * in the future. A no-op for the default per-event core, whose
     * clock only ever lands ON events — the control loop simply reads
     * now() after each step. */
    void setBarrier(Seconds t);

    /** Requests offered so far (the control plane's arrival counter). */
    std::int64_t offeredRequests() const { return offered_; }

    // ---- fault-injection signals (src/fault/, zeros when off) ------

    /** Fault events applied so far. */
    std::int64_t faultsSoFar() const { return faultsInjected_; }

    /** Fault-killed replicas rebuilt back to Active so far. */
    std::int64_t repairsSoFar() const { return repairsDone_; }

    /** Requests that exhausted their retry budget so far. */
    std::int64_t failedSoFar() const { return requestsFailed_; }

    /** Requests currently waiting out a retry backoff. */
    int retryingNow() const
    {
        return static_cast<int>(retryQueue_.size());
    }

    /** Engines currently dead from an unrepaired fault. */
    int deadReplicas() const;

    /** Transfer-stall seconds accumulated so far. */
    Seconds transferStallSoFar() const { return transferStallSeconds_; }

    /** Integral of powered devices over simulated time so far. */
    double deviceSecondsSoFar() const;

    /** Current simulated time. */
    Seconds now() const { return now_; }

    /** Latency collector (valid during and after a run). */
    const ServingMetrics &metrics() const { return metrics_; }

    /** Per-step results recorded so far (all pools, start order). */
    const std::vector<ServingStepResult> &stepResults() const
    {
        return steps_;
    }

    /** Engines driving this run: 1, or 2 when disaggregated. */
    int numEngines() const { return static_cast<int>(engines_.size()); }

    /** Engine `i` (0 = prefill pool when disaggregated). */
    const ServingEngine &engine(int i) const { return *engines_[i]; }

    const ServingConfig &config() const { return config_; }

    /** Topology the simulation runs on. */
    const Cluster &cluster() const { return cluster_; }

  private:
    /** A context whose prefill finished, in flight to the decode pool. */
    struct PendingMigration
    {
        Request request;     //!< decode target restored, finish reset
        Seconds readyAt = 0; //!< prefill finish + wire time
    };

    /** Per-pool accounting accumulated as the run plays. */
    struct PoolStats
    {
        std::int64_t preemptions = 0;
        int steps = 0;
        Accumulator kvUtil;
    };

    /** Resolve one pool's engine configuration from the run config. */
    EngineConfig engineConfigFor(const DevicePoolSlice &slice,
                                 int pool_index) const;

    /** Model-load delay of spinning a pool of this size up: the
     * per-device inference model state over the host link. */
    Seconds loadDelayFor(const DevicePoolSlice &slice) const;

    /** True when a pool of `devices` devices can hold its model shard
     * and still keep a KV pool (always true with the KV model off). */
    bool poolMemoryFeasible(int devices) const;

    /** KV budget a pool of `devices` devices would own; 0 when byte
     * accounting is off. Only valid for memory-feasible sizes. */
    Bytes poolKvBudgetFor(int devices) const;

    /** Block-rounded KV bytes a context of `context` tokens reserves
     * under this run's KV parameters; 0 when byte accounting is off. */
    Bytes kvBytesForContext(TokenCount context) const;

    /** Accrue device-seconds up to `t` (call before any change to the
     * powered-device count). */
    void accruePower(Seconds t);

    /** Devices of engines not Stopped. */
    int poweredDevices() const;

    /** Least-loaded live engine for a fresh arrival (replica mode). */
    int pickEngineForArrival() const;

    /** Apply due reconfigurations: promote loaded engines, drain due
     * Draining engines (re-homing their requests), and re-partition
     * once a pending split's pools have both drained. No-op for
     * static runs. */
    void applyReconfig();

    /** Admit every arrival due at or before now_ (horizon-bounded). */
    void pumpArrivals();

    /** Hand transferred contexts to the decode pool; set back-pressure. */
    void pumpMigrations();

    /** Route one pool's finished requests: metrics, or migration. */
    void harvestFinished(int pool_index);

    /** Record one completed request: latency collector + histograms. */
    void recordCompletion(const Request &done);

    /** Run every free engine with schedulable work at now_.
     * @return true when at least one engine executed a step. */
    bool runDueEngines();

    /** step() body (step() wraps it with snapshots + profiling). */
    bool stepOnce();

    // ---- fault injection (src/fault/; all no-ops when disabled) ----

    /** Apply fault-plan events due at now_, then any deferred
     * fail-stop whose engine has reached its busy-until. */
    void applyFaults();

    /** Apply one fault event at now_ (idempotent per kind). */
    void applyFaultEvent(const FaultEvent &event);

    /** Fail-stop engine `i` NOW: harvest its completed requests,
     * drain the rest into the retry queue (KV lost — recompute
     * disposition), and leave the slot Stopped until a repair or the
     * autoscaler rebuilds it. */
    void applyKill(std::size_t i);

    /** Rebuild a fault-killed slot behind its model-load delay
     * (scripted ReplicaRepair; autoscaler rebuilds take the
     * requestReplicas() path and close the same MTTR clock). */
    void applyRepair(std::size_t i);

    /** Queue `request` for re-admission after its capped exponential
     * backoff; counts it failed once past the retry budget. */
    void scheduleRetry(Request request, Seconds killed_at);

    /** Count `request` failed (budget exhausted / unservable). */
    void failRequest(const Request &request);

    /** Abort a KV handover cut by a dead boundary link: the context
     * re-parks its decode target and retries through the prefill pool
     * (recompute — the KV was released at the pool boundary).
     * `killed_at` is the instant through which the request's prior
     * work has already been attributed (the prefill finish for a
     * handover that never touched the wire, the wire's would-be end
     * for one cut in flight) — the retry dead time starts there, not
     * at the calendar event that noticed the cut, so the per-request
     * attribution stays exact. */
    void abortTransfer(Request request, TokenCount decode_target,
                       Seconds killed_at);

    /** Re-derive engine `i`'s KV budget from its surviving devices
     * (byte-accounting runs only); unservable requests fail. */
    void resizePoolKv(std::size_t i);

    /** Re-admit retries whose backoff has elapsed at class front;
     * fail-fast when no engine can ever serve them again. */
    void pumpRetries();

    /** Engine a retried request re-enters, or -1 when none is live
     * (Disaggregated retries go back to their phase's pool). */
    int pickRetryTarget(const Request &request) const;

    /** True while a currently-unservable retry should keep waiting:
     * an engine is Loading, or the plan still holds a repair. */
    bool reviveExpected() const;

    /** Refresh the fault-plan calendar entry (next scripted event or
     * deferred-kill boundary). */
    void scheduleFaultWake();

    /** Refresh the retry-front calendar entry. */
    void scheduleRetryWake();

    /** Re-evaluate the degraded predicate after any fault-state
     * transition; accrues degraded time and its goodput window. */
    void updateDegraded();

    /** Any fault condition currently active? */
    bool faultActive() const;

    // ---- windowed event core (ServingConfig::desParallel) ----------

    /** One engine step recorded off the simulator thread, replayed in
     * deterministic order at the window merge. */
    struct WindowStepRecord
    {
        ServingStepResult result;
        std::vector<PreemptionRecord> preempted; //!< planStep() evictions
        std::vector<Request> completions;  //!< harvested at commit
        /** Sampled requests' residency shares of this step (empty
         * unless a ReqTraceRecorder is attached); the merge replays
         * them so the recorder only ever runs on the simulator
         * thread. */
        std::vector<ReqStepShare> shares;
    };

    /** Everything one engine emits while advancing through a window. */
    struct WindowBuffer
    {
        std::vector<WindowStepRecord> steps;
        Seconds freeAt = 0.0;  //!< engine busy-until at window end
        double execMs = 0.0;   //!< wall inside executeStep (selfProfile)
        double wallMs = 0.0;   //!< worker wall inside runEngineWindow
        bool kvEnabled = false;
    };

    /** Windowed step(): advance every engine to the next barrier /
     * snapshot boundary in parallel, then merge. Falls back to
     * stepOnce() while a reconfiguration is in flight. */
    bool stepWindow();

    /** Generate and bin this window's arrivals per engine against the
     * window-start load picture. Advances offered_ and the lookahead. */
    std::vector<std::vector<Request>> binWindowArrivals(Seconds window_end);

    /** Advance engine `i` through [now_, window_end): admit its binned
     * arrivals, promote it when its shards land, and run its steps,
     * buffering all emission. Runs on a worker thread: touches only
     * the engine and `buf`. */
    void runEngineWindow(std::size_t i, Seconds window_end,
                         const std::vector<Request> &arrivals,
                         WindowBuffer &buf);

    /** Replay the window's buffered per-engine emission in (step
     * start, engine index) order — the interleaving a serial sweep of
     * the same windows would have produced — then refresh freeAt_ and
     * the calendar. */
    void mergeWindowBuffers(std::vector<WindowBuffer> &buffers);

    /** Feed retune wall samples into the registry (windowed runs keep
     * EngineConfig::metrics detached so workers never race on it; the
     * samples land here, serially, instead). */
    void replayRetuneMetrics();

    // ---- event calendar (core/event_calendar.hh) -------------------

    /** Refresh engine `i`'s calendar entry from its state/freeAt_;
     * call after every mutation that can change when (or whether) the
     * engine wakes. */
    void scheduleEngineWake(std::size_t i);

    /** Refresh the next-arrival singleton entry from the lookahead. */
    void scheduleArrivalWake();

    /** Refresh the migration-front singleton entry. */
    void scheduleMigrationWake();

    // ---- observability plumbing (no-ops when nothing is attached) --

    /** Track-name prefix: "<obsLabel>/" or "". */
    std::string obsPrefix() const;

    /** Get-or-create engine `i`'s serve track. */
    int poolTrack(std::size_t i);

    /** Get-or-create engine `i`'s planner (retune) track. */
    int plannerTrack(std::size_t i);

    /** Get-or-create the shared kv_transfer / control tracks. */
    int kvTrack();
    int controlTrack();

    /** Get-or-create the shared faults track. */
    int faultTrack();

    /** Emit retune spans for engine `i`'s wall samples recorded since
     * the last call (tracked by retuneSeen_). */
    void emitRetuneSpans(std::size_t i);

    /** Emit a ScalingEvent instant on the control track. */
    void emitScalingEvent(const ScalingEvent &event);

    /** Fold the run's authoritative counters/gauges into the attached
     * registry (called before every snapshot). */
    void updateRegistryGauges();

    /** Record due periodic CounterSnapshots (simulated cadence). */
    void maybeSnapshot();

    /** Accumulate a to-be-rebuilt engine's monotone counters so they
     * survive the rebuild, and reset its per-engine cursors. */
    void retireEngineCounters(std::size_t i);

    // ---- per-request lifecycle tracing (obs/req_trace.hh) ----------

    /** Collect the sampled requests' residency shares of one priced
     * step (pre-commit batcher state decides replay vs fresh prefill
     * and the first-token step). Touches only `engine` and the
     * recorder's pure sampling predicate, so windowed-core workers
     * may call it; no-op (empty out) when no recorder is attached. */
    void captureStepShares(const ServingEngine &engine,
                           const BatchPlan &plan,
                           const ServingStepResult &result,
                           int pool_index,
                           std::vector<ReqStepShare> &out) const;

    /** Feed preemption events + step shares to the recorder
     * (simulator thread only). */
    void replayStepTrace(const std::vector<PreemptionRecord> &preempted,
                         Seconds preempt_time,
                         const std::vector<ReqStepShare> &shares);

    /** Retire a sampled completion: exact attribution, conservation
     * check, per-class aggregation, Perfetto emission. */
    void retireSampledRequest(const Request &done);

    /** Earliest future event (engine finish, arrival, transfer);
     * +infinity when the run has fully drained. O(log sources) off
     * the calendar; debug builds cross-check the legacy scan. */
    Seconds nextEventTime();

    /** The pre-calendar O(engines) scan, kept as the debug oracle. */
    Seconds legacyNextEventTime() const;

    /** Build the report from the current state (run()/finish()). */
    ServingReport buildReport() const;

    const Cluster &cluster_;
    ServingConfig config_;
    std::unique_ptr<ThreadPool> threadPool_; //!< shared by the engines
    ArrivalProcess arrivals_;
    ServingMetrics metrics_;
    std::vector<DevicePoolSlice> slices_; //!< slot geometry, by index
    std::vector<std::unique_ptr<ServingEngine>> engines_;
    std::vector<Seconds> freeAt_;   //!< per engine: busy until
    std::vector<PoolStats> poolStats_;

    // Control-plane state. A pending replica scale-down or split is
    // one in-flight ScalingEvent whose drains have not all completed.
    struct PendingReconfig
    {
        bool active = false;
        bool split = false;        //!< split vs replica scale-down
        int target = 0;            //!< prefill devices / replica count
        Seconds requestedAt = 0.0;
        int before = 0;
        int rehomed = 0;
        std::vector<std::vector<Request>> held; //!< split: per old pool
    };
    PendingReconfig pending_;
    std::vector<ScalingEvent> scalingEvents_;
    std::vector<ControlWindowSample> windows_;
    double deviceSeconds_ = 0.0;
    Seconds lastPowerAccrual_ = 0.0;
    std::deque<PendingMigration> migrations_; //!< sorted by readyAt
    std::unordered_map<int, TokenCount> decodeTargets_; //!< id ->
                                    //!< requested decode tokens while
                                    //!< the request is in the prefill
                                    //!< pool (Disaggregated only)
    Request lookahead_;          //!< next not-yet-due arrival
    bool lookaheadValid_ = false;
    bool offeringClosed_ = false;
    Seconds now_ = 0.0;

    // Event calendar: one wake handle per engine (keyed by index, so
    // simultaneous wakes pop in engine order) plus singleton streams.
    // Entries always lie strictly in the future of now_.
    EventCalendar calendar_;
    std::vector<EventCalendar::Handle> engineWake_;
    EventCalendar::Handle arrivalWake_ = EventCalendar::kInvalidHandle;
    EventCalendar::Handle migrationWake_ = EventCalendar::kInvalidHandle;
    EventCalendar::Handle faultWake_ = EventCalendar::kInvalidHandle;
    EventCalendar::Handle retryWake_ = EventCalendar::kInvalidHandle;

    // Fault-injection state (src/fault/; untouched when disabled).
    struct PendingRetry
    {
        Request request;
        Seconds killedAt = 0.0; //!< eviction time (attribution span)
        Seconds readyAt = 0.0;  //!< backoff elapses here
    };
    bool faultsEnabled_ = false; //!< resolved config_.faults.enabled()
    std::vector<FaultEvent> faultPlan_; //!< expanded, time-sorted
    std::size_t nextFault_ = 0;         //!< walk cursor into the plan
    std::vector<char> pendingKill_;     //!< fail-stop due at freeAt_[i]
    std::vector<double> stragglerFactor_; //!< per-engine step slowdown
    std::vector<int> deadDevices_;      //!< masked devices per engine
    std::vector<Seconds> faultDownSince_; //!< MTTR clock start, or -1
    double linkFactor_ = 1.0; //!< boundary-link wire multiplier
    bool linkDown_ = false;   //!< boundary link fail-stopped
    std::deque<PendingRetry> retryQueue_;   //!< sorted by readyAt
    std::vector<FaultEvent> faultTimeline_; //!< applied events
    std::vector<Seconds> mttrSamples_;
    std::int64_t faultsInjected_ = 0;
    std::int64_t repairsDone_ = 0;
    std::int64_t requestsRetried_ = 0;
    std::int64_t requestsFailed_ = 0;
    std::int64_t transfersAborted_ = 0;
    std::vector<std::int64_t> failedByClass_;
    Seconds degradedSince_ = -1.0; //!< < 0 while healthy
    Seconds degradedSeconds_ = 0.0;
    std::int64_t goodTokensAtDegradeStart_ = 0;
    std::int64_t degradedGoodTokens_ = 0;

    // Windowed event core state.
    bool desParallel_ = false;   //!< resolved config_.desParallel
    Seconds barrier_ = 0.0;      //!< next control barrier (set in ctor
                                 //!< to +inf; setBarrier() caps it)
    std::vector<std::size_t> retuneReplayed_; //!< replayRetuneMetrics
                                              //!< per-engine cursor
    std::int64_t offered_ = 0;
    std::int64_t migrated_ = 0;
    Bytes kvTransferBytes_ = 0;
    Seconds kvTransferSeconds_ = 0.0;
    Seconds transferStallSeconds_ = 0.0;
    std::vector<ServingStepResult> steps_;

    // Observability state (inert when no recorder/registry attached).
    std::vector<std::size_t> retuneSeen_; //!< retune spans emitted
    std::vector<Seconds> drainStart_;     //!< beginDrain time, or < 0
    Seconds nextSnapshot_ = 0.0;          //!< next periodic boundary
    std::int64_t admissionsBase_ = 0;     //!< from rebuilt engines
    int retiredRetunes_ = 0;              //!< retunes, rebuilt engines
    std::vector<RetuneWallSample> retiredRetuneWall_; //!< wall samples
                                          //!< of rebuilt engines
    // Preemption counters carried across engine rebuilds (same
    // pattern as retiredRetunes_): buildReport sums retired + live
    // batcher counters, so a down-then-up cycle loses nothing.
    std::int64_t retiredPreemptions_ = 0;
    std::vector<std::int64_t> retiredPreemptionsByClass_;
    // Self-profiling accumulators (real milliseconds).
    double profExecMs_ = 0.0; //!< wall inside executeStep()
    double profStepMs_ = 0.0; //!< wall inside step()
    // Windowed-core profiling (profile.descore.* gauges + trace
    // spans; measured only when a registry/trace/selfProfile asks).
    std::int64_t descoreWindows_ = 0;   //!< parallel windows advanced
    std::int64_t descoreSteps_ = 0;     //!< engine steps inside them
    double descoreFanoutMs_ = 0.0;      //!< wall across the fan-out
    double descoreWorkerBusyMs_ = 0.0;  //!< sum of worker busy wall
    double descoreMergeMs_ = 0.0;       //!< wall inside the merge
    double descoreBarrierWaitMs_ = 0.0; //!< fan-out wall minus busy,
                                        //!< summed over engines
};

} // namespace laer

#endif // LAER_SERVE_SERVING_SIM_HH
