/**
 * @file
 * Stream-based discrete-event engine.
 *
 * Models the execution substrate of Sec. 3.1 / Fig. 5: every device
 * owns a small set of in-order streams (compute S1, prefetch comm S2,
 * dispatch All-to-All S3, gradient sync S4 — mirroring CUDA streams in
 * the real system). A task occupies one stream for a fixed duration
 * and may depend on tasks from any stream/device. Within a stream,
 * tasks run in launch order (FIFO), exactly like CUDA kernel launch
 * semantics; a task starts when its stream is free AND all
 * dependencies have finished.
 *
 * Because dependencies must reference already-created tasks, the task
 * list is topologically ordered by construction and the schedule is
 * computed in a single linear pass.
 */

#ifndef LAER_SIM_ENGINE_HH
#define LAER_SIM_ENGINE_HH

#include <map>
#include <string>
#include <vector>

#include "core/types.hh"

namespace laer
{

/** Stream classes per device (paper Fig. 5 S1-S4). */
enum class StreamKind
{
    Compute,  //!< S1: forward/backward kernels
    Prefetch, //!< S2: parameter prefetch communication
    Dispatch, //!< S3: token All-to-All dispatch/combine
    GradSync, //!< S4: gradient reshard / synchronisation
};

/** Printable stream name. */
const char *streamKindName(StreamKind kind);

/** Handle to a scheduled task. */
using TaskId = int;

/** A task instance after scheduling. */
struct SimTask
{
    std::string name;
    DeviceId device = 0;
    StreamKind stream = StreamKind::Compute;
    std::string category; //!< aggregation key for breakdowns
    Seconds duration = 0.0;
    std::vector<TaskId> deps;
    Seconds start = 0.0;
    Seconds finish = 0.0;
};

/**
 * The engine: add tasks in launch order, then run() to timestamp them.
 */
class SimEngine
{
  public:
    /** Create an engine for `n_devices` devices. */
    explicit SimEngine(int n_devices);

    /**
     * Launch a task.
     *
     * @param name      Debug label.
     * @param device    Owning device.
     * @param stream    Stream the task serialises on.
     * @param duration  Busy time in seconds.
     * @param deps      Tasks that must finish first (must already
     *                  exist — enforces acyclicity).
     * @param category  Breakdown bucket (e.g. "a2a", "expert").
     * @return the new task's id.
     */
    TaskId addTask(std::string name, DeviceId device, StreamKind stream,
                   Seconds duration, const std::vector<TaskId> &deps = {},
                   std::string category = {});

    /** Compute start/finish times for every task (single pass). */
    void run();

    /** True once run() has executed. */
    bool scheduled() const { return scheduled_; }

    /** Latest finish time across all tasks. */
    Seconds makespan() const;

    /** Immutable view of a task (post-run for valid timestamps). */
    const SimTask &task(TaskId id) const;

    /** Number of tasks added. */
    int taskCount() const { return static_cast<int>(tasks_.size()); }

    /**
     * Total busy seconds per category, averaged over devices — the
     * quantity the paper's Fig. 10(a) breakdown reports.
     */
    std::map<std::string, Seconds> categoryBusyPerDevice() const;

    /** Total busy seconds of one device's stream. */
    Seconds streamBusy(DeviceId device, StreamKind stream) const;

    /**
     * Exposed (non-overlapped) seconds of a category on the critical
     * path of each device's compute stream: time the compute stream
     * spent idle while at least one task of that category ran.
     */
    Seconds exposedTime(const std::string &category) const;

  private:
    int numDevices_;
    bool scheduled_ = false;
    std::vector<SimTask> tasks_;
    /** streamTail_[device][kind] = finish of last task launched. */
    std::vector<std::map<StreamKind, Seconds>> streamTails_;
};

} // namespace laer

#endif // LAER_SIM_ENGINE_HH
