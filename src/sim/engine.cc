#include "sim/engine.hh"

#include <algorithm>

#include "core/error.hh"

namespace laer
{

const char *
streamKindName(StreamKind kind)
{
    switch (kind) {
      case StreamKind::Compute:
        return "compute";
      case StreamKind::Prefetch:
        return "prefetch";
      case StreamKind::Dispatch:
        return "dispatch";
      case StreamKind::GradSync:
        return "gradsync";
    }
    return "?";
}

SimEngine::SimEngine(int n_devices)
    : numDevices_(n_devices), streamTails_(n_devices)
{
    LAER_CHECK(n_devices > 0, "engine needs at least one device");
}

TaskId
SimEngine::addTask(std::string name, DeviceId device, StreamKind stream,
                   Seconds duration, const std::vector<TaskId> &deps,
                   std::string category)
{
    LAER_CHECK(device >= 0 && device < numDevices_,
               "task device out of range");
    LAER_CHECK(duration >= 0.0, "negative task duration");
    const TaskId id = static_cast<TaskId>(tasks_.size());
    for (TaskId dep : deps)
        LAER_CHECK(dep >= 0 && dep < id,
                   "dependency must reference an earlier task");
    SimTask task;
    task.name = std::move(name);
    task.device = device;
    task.stream = stream;
    task.category = std::move(category);
    task.duration = duration;
    task.deps = deps;
    tasks_.push_back(std::move(task));
    scheduled_ = false;
    return id;
}

void
SimEngine::run()
{
    for (auto &tails : streamTails_)
        tails.clear();
    // Launch order == insertion order; deps are always earlier tasks,
    // so a single forward pass produces the fixed-point schedule.
    for (auto &task : tasks_) {
        Seconds ready = 0.0;
        for (TaskId dep : task.deps)
            ready = std::max(ready, tasks_[dep].finish);
        Seconds &tail = streamTails_[task.device][task.stream];
        task.start = std::max(ready, tail);
        task.finish = task.start + task.duration;
        tail = task.finish;
    }
    scheduled_ = true;
}

Seconds
SimEngine::makespan() const
{
    LAER_ASSERT(scheduled_, "makespan before run()");
    Seconds end = 0.0;
    for (const auto &task : tasks_)
        end = std::max(end, task.finish);
    return end;
}

const SimTask &
SimEngine::task(TaskId id) const
{
    LAER_ASSERT(id >= 0 && id < taskCount(), "bad task id");
    return tasks_[id];
}

std::map<std::string, Seconds>
SimEngine::categoryBusyPerDevice() const
{
    std::map<std::string, Seconds> busy;
    for (const auto &task : tasks_)
        if (!task.category.empty())
            busy[task.category] += task.duration;
    for (auto &[cat, secs] : busy)
        secs /= numDevices_;
    return busy;
}

Seconds
SimEngine::streamBusy(DeviceId device, StreamKind stream) const
{
    Seconds busy = 0.0;
    for (const auto &task : tasks_)
        if (task.device == device && task.stream == stream)
            busy += task.duration;
    return busy;
}

Seconds
SimEngine::exposedTime(const std::string &category) const
{
    LAER_ASSERT(scheduled_, "exposedTime before run()");
    // Collect the busy intervals of the category and, per device, the
    // idle intervals of the compute stream; the exposed time is the
    // average overlap of "category running" with "compute idle".
    struct Interval
    {
        Seconds lo, hi;
    };
    std::vector<Interval> cat;
    for (const auto &task : tasks_)
        if (task.category == category && task.duration > 0)
            cat.push_back({task.start, task.finish});
    if (cat.empty())
        return 0.0;
    std::sort(cat.begin(), cat.end(),
              [](const Interval &a, const Interval &b) {
                  return a.lo < b.lo;
              });
    // Merge the category intervals.
    std::vector<Interval> merged;
    for (const auto &iv : cat) {
        if (!merged.empty() && iv.lo <= merged.back().hi)
            merged.back().hi = std::max(merged.back().hi, iv.hi);
        else
            merged.push_back(iv);
    }

    const Seconds end = makespan();
    Seconds exposed_total = 0.0;
    for (DeviceId d = 0; d < numDevices_; ++d) {
        // Busy intervals of this device's compute stream.
        std::vector<Interval> busy;
        for (const auto &task : tasks_)
            if (task.device == d && task.stream == StreamKind::Compute &&
                task.duration > 0)
                busy.push_back({task.start, task.finish});
        std::sort(busy.begin(), busy.end(),
                  [](const Interval &a, const Interval &b) {
                      return a.lo < b.lo;
                  });
        // Walk the merged category intervals and subtract compute-busy
        // overlap.
        for (const auto &iv : merged) {
            Seconds uncovered = std::min(iv.hi, end) - iv.lo;
            for (const auto &b : busy) {
                const Seconds lo = std::max(iv.lo, b.lo);
                const Seconds hi = std::min(iv.hi, b.hi);
                if (hi > lo)
                    uncovered -= (hi - lo);
            }
            if (uncovered > 0)
                exposed_total += uncovered;
        }
    }
    return exposed_total / numDevices_;
}

} // namespace laer
