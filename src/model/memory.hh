/**
 * @file
 * Per-device model-state and activation memory model (paper Sec. 3.1).
 *
 * Implements the memory analysis used to argue FSEP's footprint: with
 * full sharding the optimizer state is 1/N of the whole model, the
 * parameter/gradient states add the working set of the current and
 * prefetched layer, and FSEP adds only 2*C*Psi_expert on top of FSDP.
 * Megatron-style EP+TP keeps whole experts resident, which is what
 * forces it onto larger TP degrees for the e8k2 models (Sec. 5.2).
 */

#ifndef LAER_MODEL_MEMORY_HH
#define LAER_MODEL_MEMORY_HH

#include "core/types.hh"
#include "model/config.hh"

namespace laer
{

/** Bytes of optimizer state per parameter: fp32 master + Adam m, v. */
constexpr int kOptimizerBytesPerParam = 12;

/** Host-link (PCIe 4.0 x16-class) unidirectional bandwidth in B/s —
 * the rate swap-style KV preemption offloads to and restores from
 * host memory (serve/batcher.hh, PreemptionMode::Swap). */
constexpr double kHostLinkBw = 32e9;

/** Breakdown of per-device model-state memory. */
struct ModelStateMemory
{
    Bytes optimizerState = 0; //!< sharded fp32 master + moments
    Bytes paramState = 0;     //!< resident bf16 parameters
    Bytes gradState = 0;      //!< resident bf16 gradients

    Bytes total() const { return optimizerState + paramState + gradState; }
};

/**
 * FSEP per-device model state for N devices and expert capacity C
 * (Sec. 3.1 memory analysis):
 *   optimizer = 12 * Psi_all / N
 *   params    = 2 * Psi_all / N + 2 * Psi_other + 2 * (2C Psi_expert)
 *   grads     = params (delayed gradient sync keeps symmetry)
 */
ModelStateMemory fsepModelState(const ModelConfig &cfg, int n_devices,
                                int capacity);

/**
 * Plain FSDP(+EP) per-device model state: as FSEP but the unsharded
 * working set holds the C experts of one layer once (no double
 * buffering of prefetched expert parameters).
 */
ModelStateMemory fsdpEpModelState(const ModelConfig &cfg, int n_devices,
                                  int capacity);

/**
 * Megatron-style EP+TP+DP: experts live unsharded on their EP rank
 * (E / ep_degree whole experts per device), attention weights are cut
 * by the TP degree, and optimizer states shard over the DP replicas.
 */
ModelStateMemory megatronModelState(const ModelConfig &cfg, int n_devices,
                                    int ep_degree, int tp_degree);

/**
 * Inference-time FSEP per-device model state: bf16 parameters fully
 * sharded (Psi_all / N) plus the unsharded working set — one layer's
 * attention weights and the 2C double-buffered expert restore slots —
 * with no gradient or optimizer residency. This is the "model state"
 * term the serving KV-cache budget subtracts from HBM
 * (serve/kv_cache.hh).
 *
 * @param cfg        Model served.
 * @param n_devices  Cluster size N.
 * @param capacity   C, expert slots per device.
 * @return the breakdown; gradState and optimizerState are zero.
 */
ModelStateMemory inferenceModelState(const ModelConfig &cfg, int n_devices,
                                     int capacity);

/**
 * Activation bytes per token for one Transformer layer (checkpointing
 * keeps only boundary activations when enabled).
 */
Bytes activationBytesPerToken(const ModelConfig &cfg, bool checkpointing);

/**
 * Largest per-device micro-batch (tokens) that fits in `hbm_bytes`
 * after the given model state, rounded down to a multiple of 1K.
 */
TokenCount maxMicroBatchTokens(const ModelConfig &cfg,
                               const ModelStateMemory &state,
                               Bytes hbm_bytes, bool checkpointing);

} // namespace laer

#endif // LAER_MODEL_MEMORY_HH
