/**
 * @file
 * MoE model configurations (paper Tab. 2) and arithmetic accounting.
 *
 * All parameter, FLOP and byte counts used anywhere in the simulator
 * derive from this one struct so the cost model, memory model and
 * benches can never disagree about model arithmetic.
 */

#ifndef LAER_MODEL_CONFIG_HH
#define LAER_MODEL_CONFIG_HH

#include <string>
#include <vector>

#include "core/types.hh"

namespace laer
{

/**
 * One decoder-only MoE Transformer configuration.
 *
 * The e16k4 variants follow the paper's construction: the expert count
 * doubles to 16 with top-k 4 while the per-expert intermediate size
 * halves, keeping per-layer parameter count and compute unchanged.
 */
struct ModelConfig
{
    std::string name;       //!< e.g. "mixtral-8x7b-e8k2"
    int layers = 0;         //!< Transformer layer count
    int hiddenDim = 0;      //!< H
    int intermediateDim = 0;//!< H' per expert (SwiGLU)
    int numExperts = 0;     //!< E
    int topK = 0;           //!< K experts per token
    int numHeads = 0;       //!< attention query heads
    int numKvHeads = 0;     //!< GQA key/value heads
    int headDim = 0;        //!< per-head dimension
    int vocabSize = 0;      //!< tokenizer vocabulary
    bool attnBias = false;  //!< QKV bias (Qwen-style)
    int bytesPerParam = 2;  //!< bf16 training

    /** SwiGLU expert parameter count: 3 * H * H'. */
    std::int64_t expertParams() const;

    /** Expert parameter bytes (Psi_expert in the paper). */
    Bytes expertParamBytes() const;

    /** All experts of one layer. */
    std::int64_t expertParamsPerLayer() const;

    /** Attention (+norms +gate) parameters of one layer: Psi_other. */
    std::int64_t nonExpertParamsPerLayer() const;

    /** Embedding + LM-head parameters. */
    std::int64_t embeddingParams() const;

    /** Total model parameters (Tab. 2 "Params"). */
    std::int64_t totalParams() const;

    /** Parameters activated per token (Tab. 2 "Activs"). */
    std::int64_t activatedParams() const;

    /** Forward FLOPs of one token through one expert: 6 * H * H'
     * (paper Sec. 3.1, V_comp per token). */
    Flops expertFlopsPerToken() const;

    /** Forward FLOPs of one token through one attention layer at the
     * given context length (weight GEMMs + score/value matmuls). */
    Flops attnFlopsPerToken(int seq_len) const;

    /** Bytes moved per token by one All-to-All hop: H * bytesPerParam
     * (paper's V_comm per token). */
    Bytes tokenBytes() const;

    /** Validate internal consistency; throws FatalError on misuse. */
    void validate() const;
};

/** @name Tab. 2 presets
 *  Factory functions for the six evaluated configurations.
 *  @{ */
ModelConfig mixtral8x7bE8K2();
ModelConfig mixtral8x7bE16K4();
ModelConfig mixtral8x22bE8K2();
ModelConfig mixtral8x22bE16K4();
ModelConfig qwen8x7bE8K2();
ModelConfig qwen8x7bE16K4();
/** @} */

/** All six Tab. 2 configurations in paper order. */
std::vector<ModelConfig> allEvaluatedModels();

/** Look a preset up by name (e.g. "mixtral-8x7b-e8k2"). */
ModelConfig modelByName(const std::string &name);

} // namespace laer

#endif // LAER_MODEL_CONFIG_HH
