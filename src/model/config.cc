#include "model/config.hh"

#include "core/error.hh"

namespace laer
{

std::int64_t
ModelConfig::expertParams() const
{
    return 3LL * hiddenDim * intermediateDim;
}

Bytes
ModelConfig::expertParamBytes() const
{
    return expertParams() * bytesPerParam;
}

std::int64_t
ModelConfig::expertParamsPerLayer() const
{
    return expertParams() * numExperts;
}

std::int64_t
ModelConfig::nonExpertParamsPerLayer() const
{
    const std::int64_t q = 1LL * hiddenDim * numHeads * headDim;
    const std::int64_t kv = 2LL * hiddenDim * numKvHeads * headDim;
    const std::int64_t o = 1LL * numHeads * headDim * hiddenDim;
    std::int64_t attn = q + kv + o;
    if (attnBias)
        attn += (numHeads + 2LL * numKvHeads) * headDim;
    const std::int64_t norms = 2LL * hiddenDim;
    const std::int64_t gate = 1LL * numExperts * hiddenDim;
    return attn + norms + gate;
}

std::int64_t
ModelConfig::embeddingParams() const
{
    // Untied input embedding and LM head, plus the final norm.
    return 2LL * vocabSize * hiddenDim + hiddenDim;
}

std::int64_t
ModelConfig::totalParams() const
{
    return layers * (expertParamsPerLayer() + nonExpertParamsPerLayer()) +
           embeddingParams();
}

std::int64_t
ModelConfig::activatedParams() const
{
    return layers * (topK * expertParams() + nonExpertParamsPerLayer()) +
           embeddingParams();
}

Flops
ModelConfig::expertFlopsPerToken() const
{
    // 2 FLOPs per multiply-accumulate over 3*H*H' SwiGLU weights.
    return 6.0 * hiddenDim * intermediateDim;
}

Flops
ModelConfig::attnFlopsPerToken(int seq_len) const
{
    const std::int64_t q = 1LL * hiddenDim * numHeads * headDim;
    const std::int64_t kv = 2LL * hiddenDim * numKvHeads * headDim;
    const std::int64_t o = 1LL * numHeads * headDim * hiddenDim;
    const double weight_flops = 2.0 * static_cast<double>(q + kv + o);
    // Scores and value mixing: 2 matmuls of [1, d] x [d, seq] per head;
    // causal masking halves the average effective context.
    const double score_flops =
        2.0 * 2.0 * numHeads * headDim * (seq_len / 2.0);
    return weight_flops + score_flops;
}

Bytes
ModelConfig::tokenBytes() const
{
    return static_cast<Bytes>(hiddenDim) * bytesPerParam;
}

void
ModelConfig::validate() const
{
    LAER_CHECK(layers > 0, "model needs layers");
    LAER_CHECK(hiddenDim > 0 && intermediateDim > 0, "bad dimensions");
    LAER_CHECK(numExperts > 0, "model needs experts");
    LAER_CHECK(topK > 0 && topK <= numExperts, "top-k out of range");
    LAER_CHECK(numHeads > 0 && numKvHeads > 0, "bad head counts");
    LAER_CHECK(numHeads % numKvHeads == 0, "GQA requires divisibility");
    LAER_CHECK(vocabSize > 0, "model needs a vocabulary");
}

namespace
{

ModelConfig
mixtral8x7bBase()
{
    ModelConfig cfg;
    cfg.hiddenDim = 4096;
    cfg.intermediateDim = 14336;
    cfg.numHeads = 32;
    cfg.numKvHeads = 8;
    cfg.headDim = 128;
    cfg.vocabSize = 32000;
    return cfg;
}

ModelConfig
mixtral8x22bBase()
{
    ModelConfig cfg;
    cfg.hiddenDim = 6144;
    cfg.intermediateDim = 16384;
    cfg.numHeads = 48;
    cfg.numKvHeads = 8;
    cfg.headDim = 128;
    cfg.vocabSize = 32768;
    return cfg;
}

/** Apply the paper's e16k4 transform: double experts, halve expert
 * width, double top-k — per-layer params and compute unchanged. */
ModelConfig
toE16K4(ModelConfig cfg)
{
    cfg.numExperts = 16;
    cfg.topK = 4;
    cfg.intermediateDim /= 2;
    return cfg;
}

} // namespace

ModelConfig
mixtral8x7bE8K2()
{
    ModelConfig cfg = mixtral8x7bBase();
    cfg.name = "mixtral-8x7b-e8k2";
    cfg.layers = 32;
    cfg.numExperts = 8;
    cfg.topK = 2;
    return cfg;
}

ModelConfig
mixtral8x7bE16K4()
{
    ModelConfig cfg = toE16K4(mixtral8x7bBase());
    cfg.name = "mixtral-8x7b-e16k4";
    cfg.layers = 24; // Tab. 2: layers reduced for activation memory
    return cfg;
}

ModelConfig
mixtral8x22bE8K2()
{
    ModelConfig cfg = mixtral8x22bBase();
    cfg.name = "mixtral-8x22b-e8k2";
    cfg.layers = 18; // Tab. 2: reduced for model-state memory
    cfg.numExperts = 8;
    cfg.topK = 2;
    return cfg;
}

ModelConfig
mixtral8x22bE16K4()
{
    ModelConfig cfg = toE16K4(mixtral8x22bBase());
    cfg.name = "mixtral-8x22b-e16k4";
    cfg.layers = 14;
    return cfg;
}

ModelConfig
qwen8x7bE8K2()
{
    // The paper "transforms Mixtral-8x7B into the Qwen-8x7B
    // architecture" (Sec. 5.1): same shapes, QKV bias enabled.
    ModelConfig cfg = mixtral8x7bE8K2();
    cfg.name = "qwen-8x7b-e8k2";
    cfg.attnBias = true;
    return cfg;
}

ModelConfig
qwen8x7bE16K4()
{
    ModelConfig cfg = mixtral8x7bE16K4();
    cfg.name = "qwen-8x7b-e16k4";
    cfg.attnBias = true;
    return cfg;
}

std::vector<ModelConfig>
allEvaluatedModels()
{
    return {mixtral8x7bE8K2(),  mixtral8x22bE8K2(),  qwen8x7bE8K2(),
            mixtral8x7bE16K4(), mixtral8x22bE16K4(), qwen8x7bE16K4()};
}

ModelConfig
modelByName(const std::string &name)
{
    for (const auto &cfg : allEvaluatedModels())
        if (cfg.name == name)
            return cfg;
    fatal("unknown model config: " + name);
}

} // namespace laer
