#include "model/memory.hh"

#include <algorithm>

#include "core/error.hh"

namespace laer
{

namespace
{

/** Shared fully-sharded portion: everything divided by N. */
ModelStateMemory
fullyShardedBase(const ModelConfig &cfg, int n_devices)
{
    LAER_CHECK(n_devices >= 1, "need at least one device");
    const std::int64_t psi_all = cfg.totalParams();
    ModelStateMemory m;
    m.optimizerState = psi_all * kOptimizerBytesPerParam / n_devices;
    m.paramState = psi_all * cfg.bytesPerParam / n_devices;
    m.gradState = m.paramState;
    return m;
}

} // namespace

ModelStateMemory
fsepModelState(const ModelConfig &cfg, int n_devices, int capacity)
{
    ModelStateMemory m = fullyShardedBase(cfg, n_devices);
    const Bytes other = cfg.nonExpertParamsPerLayer() * cfg.bytesPerParam;
    const Bytes experts = 2LL * capacity * cfg.expertParamBytes();
    m.paramState += other + experts;
    m.gradState += other + experts;
    return m;
}

ModelStateMemory
fsdpEpModelState(const ModelConfig &cfg, int n_devices, int capacity)
{
    ModelStateMemory m = fullyShardedBase(cfg, n_devices);
    const Bytes other = cfg.nonExpertParamsPerLayer() * cfg.bytesPerParam;
    const Bytes experts = 1LL * capacity * cfg.expertParamBytes();
    m.paramState += other + experts;
    m.gradState += other + experts;
    return m;
}

ModelStateMemory
megatronModelState(const ModelConfig &cfg, int n_devices,
                   int ep_degree, int tp_degree)
{
    LAER_CHECK(ep_degree >= 1 && tp_degree >= 1, "bad parallel degrees");
    LAER_CHECK(cfg.numExperts % ep_degree == 0,
               "experts must divide evenly over EP ranks");
    LAER_CHECK(n_devices % (ep_degree * tp_degree) == 0,
               "N must be divisible by ep*tp");
    const int dp = n_devices / (ep_degree * tp_degree);

    const std::int64_t experts_resident =
        cfg.layers * (cfg.numExperts / ep_degree) * cfg.expertParams();
    const std::int64_t other_resident =
        cfg.layers * cfg.nonExpertParamsPerLayer() / tp_degree +
        cfg.embeddingParams() / tp_degree;
    const std::int64_t resident = experts_resident + other_resident;

    ModelStateMemory m;
    m.paramState = resident * cfg.bytesPerParam;
    m.gradState = m.paramState;
    // Distributed optimizer shards fp32 states over the DP replicas.
    m.optimizerState = resident * kOptimizerBytesPerParam / dp;
    return m;
}

ModelStateMemory
inferenceModelState(const ModelConfig &cfg, int n_devices, int capacity)
{
    LAER_CHECK(n_devices >= 1, "need at least one device");
    LAER_CHECK(capacity >= 1, "capacity must be positive");
    ModelStateMemory m;
    m.paramState =
        cfg.totalParams() * cfg.bytesPerParam / n_devices +
        cfg.nonExpertParamsPerLayer() * cfg.bytesPerParam +
        2LL * capacity * cfg.expertParamBytes();
    return m;
}

Bytes
activationBytesPerToken(const ModelConfig &cfg, bool checkpointing)
{
    if (checkpointing) {
        // Only layer-boundary activations are retained.
        return 1LL * cfg.hiddenDim * cfg.bytesPerParam * cfg.layers;
    }
    // Rough per-layer live set: attention in/out, QKV, expert inputs
    // and SwiGLU intermediates for the K routed copies of the token.
    const std::int64_t per_layer =
        6LL * cfg.hiddenDim + 2LL * cfg.topK * cfg.intermediateDim +
        2LL * cfg.topK * cfg.hiddenDim;
    return per_layer * cfg.bytesPerParam * cfg.layers;
}

TokenCount
maxMicroBatchTokens(const ModelConfig &cfg, const ModelStateMemory &state,
                    Bytes hbm_bytes, bool checkpointing)
{
    const Bytes slack = hbm_bytes - state.total();
    if (slack <= 0)
        return 0;
    const Bytes per_token = activationBytesPerToken(cfg, checkpointing);
    const TokenCount raw = slack / per_token;
    return (raw / 1024) * 1024;
}

} // namespace laer
