/**
 * @file
 * Sparse token routing plan — the hot-path representation of S.
 *
 * The dense RoutingPlan stores N x E x N token counts: 67M entries
 * per layer at 1024 devices x 64 experts, almost all zero, because a
 * source routes each expert's tokens to at most |replica set| (and
 * under lite routing usually to a handful of) destinations. The
 * serving step pricer touches S once per layer per step, so at scale
 * the dense materialisation dominates the planner/serving wall time.
 *
 * RoutingPlanSparse stores, per source rank, a CSR row of
 * (expert, destination, tokens) triples. Everything the pricer needs
 * comes straight off the triples in O(nnz): received tokens per
 * device, and the four per-device port-load sums
 * (comm/collectives.hh) that a2aBottleneckTime reduces a dense
 * VolumeMatrix to — so neither the dense S nor the dense dispatch /
 * combine volume matrices are ever built. All sums are exact integer
 * arithmetic, which keeps every priced time bit-identical to the
 * dense path.
 */

#ifndef LAER_PLANNER_ROUTING_PLAN_SPARSE_HH
#define LAER_PLANNER_ROUTING_PLAN_SPARSE_HH

#include <cstddef>
#include <vector>

#include "comm/collectives.hh"
#include "planner/lite_routing.hh"
#include "planner/types.hh"
#include "topo/cluster.hh"

namespace laer
{

/** Per-rank CSR of (expert, destination, tokens) triples. */
class RoutingPlanSparse
{
  public:
    /** One non-zero S[i][j][k] cell; the source i is implicit in the
     * row structure. */
    struct Entry
    {
        ExpertId expert = 0;
        DeviceId dst = 0;
        TokenCount tokens = 0;
    };

    RoutingPlanSparse() = default;

    /** Empty plan for N devices and E experts. */
    RoutingPlanSparse(int n_devices, int n_experts) { clear(n_devices, n_experts); }

    /** Reset to an empty N x E plan, reusing entry storage. */
    void clear(int n_devices, int n_experts);

    int numDevices() const { return numDevices_; }
    int numExperts() const { return numExperts_; }

    /** Number of stored (non-zero) triples. */
    std::size_t nnz() const { return entries_.size(); }

    /**
     * Append one triple to the row of `rank`. Rows must be built in
     * ascending rank order (CSR discipline); duplicate (expert, dst)
     * cells within a row are allowed and sum.
     */
    void add(DeviceId rank, ExpertId expert, DeviceId dst,
             TokenCount tokens);

    /** Entries of one source rank's row. */
    const Entry *row(DeviceId rank, std::size_t &count) const;

    /** Materialise the dense equivalent (tests / slow path). */
    RoutingPlan toDense() const;

    /** Compress a dense plan (tests / interop). */
    static RoutingPlanSparse fromDense(const RoutingPlan &dense);

    /** Tokens device k receives for computation: sum over triples. */
    std::vector<TokenCount> receivedTokens() const;

    /** receivedTokens into a caller-owned buffer (no allocation). */
    void receivedTokens(std::vector<TokenCount> &out) const;

    /**
     * Dispatch port loads in bytes: per-device send/recv sums split
     * by port class, exactly what dispatchVolume +
     * a2aBottleneckTime's folding would produce (diagonal excluded).
     * The combine direction is the same loads transposed
     * (a2aBottleneckTimeFromLoads(..., true)).
     *
     * @param cluster          Topology (node membership).
     * @param bytes_per_token  Per-token payload.
     * @param out              Filled loads (reset to this plan's size).
     */
    void portLoads(const Cluster &cluster, Bytes bytes_per_token,
                   A2aPortLoads &out) const;

    /** Dense dispatch volume (tests / parity with RoutingPlan). */
    VolumeMatrix dispatchVolume(Bytes bytes_per_token) const;

  private:
    int numDevices_ = 0;
    int numExperts_ = 0;
    int curRow_ = -1;                 //!< highest rank with entries
    std::vector<std::size_t> rowOff_; //!< row starts for ranks
                                      //!< [0, curRow_]; later rows are
                                      //!< empty until appended to
    std::vector<Entry> entries_;
};

/**
 * Lite routing straight into sparse form: Alg. 3 against a prebuilt
 * ReplicaIndex, emitting only the non-zero shares. The produced plan
 * is exactly liteRouting()'s dense result compressed.
 *
 * @param cluster  Topology.
 * @param routing  Routing matrix R.
 * @param index    Replica lists of the layout being routed against.
 * @param plan     Output; cleared and filled (storage reused).
 */
void liteRoutingSparse(const Cluster &cluster,
                       const RoutingMatrix &routing,
                       const ReplicaIndex &index,
                       RoutingPlanSparse &plan);

} // namespace laer

#endif // LAER_PLANNER_ROUTING_PLAN_SPARSE_HH
