/**
 * @file
 * Expert relocation (paper Alg. 1): place a given per-expert replica
 * budget onto concrete devices.
 *
 * Greedy, topology-aware and co-designed with lite routing: replicas
 * of each expert spread across nodes as evenly as possible (because
 * lite routing splits load evenly among intra-node replicas), and
 * within the admissible nodes the device with the least accumulated
 * load wins. Replicas are placed in descending order of their expected
 * per-replica load so heavy placements commit first.
 */

#ifndef LAER_PLANNER_RELOCATION_HH
#define LAER_PLANNER_RELOCATION_HH

#include <vector>

#include "planner/types.hh"
#include "topo/cluster.hh"

namespace laer
{

/**
 * Place replicas onto devices.
 *
 * @param cluster       Topology (node(i) is what the algorithm needs).
 * @param expert_rep    Replicas per expert; must sum to N * capacity.
 * @param expert_loads  Total tokens per expert.
 * @param capacity      Expert slots per device (C).
 * @return feasible layout A.
 */
ExpertLayout expertRelocation(const Cluster &cluster,
                              const std::vector<int> &expert_rep,
                              const std::vector<TokenCount> &expert_loads,
                              int capacity);

} // namespace laer

#endif // LAER_PLANNER_RELOCATION_HH
