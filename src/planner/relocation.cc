#include "planner/relocation.hh"

#include <algorithm>
#include <functional>
#include <limits>
#include <queue>
#include <tuple>
#include <utility>

#include "core/error.hh"

namespace laer
{

ExpertLayout
expertRelocation(const Cluster &cluster, const std::vector<int> &expert_rep,
                 const std::vector<TokenCount> &expert_loads, int capacity)
{
    const int n = cluster.numDevices();
    const int e = static_cast<int>(expert_rep.size());
    LAER_CHECK(static_cast<int>(expert_loads.size()) == e,
               "replica/load vectors disagree");
    int total_rep = 0;
    for (int r : expert_rep) {
        LAER_CHECK(r >= 1, "every expert needs at least one replica");
        total_rep += r;
    }
    LAER_CHECK(total_rep == n * capacity,
               "replica budget " << total_rep << " != slots "
                                 << n * capacity);

    // Alg. 1 lines 3-5: one list entry per replica, carrying the
    // expected average load, sorted descending.
    struct Item
    {
        ExpertId expert;
        double load;
    };
    std::vector<Item> list;
    list.reserve(total_rep);
    for (ExpertId j = 0; j < e; ++j) {
        const double avg = static_cast<double>(expert_loads[j]) /
                           expert_rep[j];
        for (int r = 0; r < expert_rep[j]; ++r)
            list.push_back({j, avg});
    }
    std::stable_sort(list.begin(), list.end(),
                     [](const Item &a, const Item &b) {
                         return a.load > b.load;
                     });

    ExpertLayout layout(n, e);
    std::vector<int> expert_count(n, 0);   // slots used per device
    std::vector<double> device_loads(n, 0.0);
    std::vector<std::vector<int>> node_cnt(
        e, std::vector<int>(cluster.numNodes(), 0));
    std::vector<int> node_free(cluster.numNodes(),
                               cluster.devicesPerNode() * capacity);

    // Per-node lazy min-heaps over (load, device). Entries go stale
    // when a device's load changes; stale or full entries are
    // discarded on pop. This keeps the placement loop at
    // O(N*C * (#nodes + log N)) instead of the naive O(N^2 * C) scan,
    // which is what lets the solver stay inside the per-layer budget
    // at 1024 devices (Fig. 11).
    using HeapEntry = std::pair<double, DeviceId>;
    std::vector<std::priority_queue<HeapEntry,
                                    std::vector<HeapEntry>,
                                    std::greater<HeapEntry>>>
        heaps(cluster.numNodes());
    for (DeviceId d = 0; d < n; ++d)
        heaps[cluster.node(d)].emplace(0.0, d);

    // Drop stale/full entries and return the node's best device, or
    // -1 when the node has no free slot.
    auto clean_top = [&](NodeId nd) -> DeviceId {
        auto &heap = heaps[nd];
        while (!heap.empty()) {
            const auto [load, d] = heap.top();
            if (expert_count[d] >= capacity) {
                heap.pop();
                continue;
            }
            if (load != device_loads[d]) {
                heap.pop();
                heap.emplace(device_loads[d], d);
                continue;
            }
            return d;
        }
        return -1;
    };

    for (const Item &item : list) {
        // Alg. 1 lines 7-9: among nodes with free slots, those with
        // the fewest replicas of this expert.
        int min_cnt = std::numeric_limits<int>::max();
        for (NodeId nd = 0; nd < cluster.numNodes(); ++nd)
            if (node_free[nd] > 0)
                min_cnt = std::min(min_cnt, node_cnt[item.expert][nd]);
        LAER_ASSERT(min_cnt != std::numeric_limits<int>::max(),
                    "no device has a free expert slot");

        // Alg. 1 line 10: least-loaded free device within those nodes.
        DeviceId best = -1;
        for (NodeId nd = 0; nd < cluster.numNodes(); ++nd) {
            if (node_free[nd] == 0 ||
                node_cnt[item.expert][nd] != min_cnt)
                continue;
            const DeviceId d = clean_top(nd);
            if (d >= 0 && (best < 0 ||
                           device_loads[d] < device_loads[best]))
                best = d;
        }
        LAER_ASSERT(best >= 0, "relocation found no placement");

        // A duplicate replica on one device adds no balancing power;
        // if the heap pick already hosts this expert, fall back to a
        // scan for the cheapest non-duplicate placement (rare).
        if (layout.at(best, item.expert) > 0) {
            DeviceId alt = -1;
            auto key = [&](DeviceId d) {
                return std::make_pair(
                    node_cnt[item.expert][cluster.node(d)],
                    device_loads[d]);
            };
            for (DeviceId d = 0; d < n; ++d) {
                if (expert_count[d] >= capacity ||
                    layout.at(d, item.expert) > 0)
                    continue;
                if (alt < 0 || key(d) < key(alt))
                    alt = d;
            }
            if (alt >= 0)
                best = alt;
        }

        // Alg. 1 lines 11-13: commit the placement.
        ++layout.at(best, item.expert);
        device_loads[best] += item.load;
        ++expert_count[best];
        ++node_cnt[item.expert][cluster.node(best)];
        --node_free[cluster.node(best)];
        heaps[cluster.node(best)].emplace(device_loads[best], best);
    }
    return layout;
}

} // namespace laer
