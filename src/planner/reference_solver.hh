/**
 * @file
 * Exhaustive reference solver for tiny instances.
 *
 * The joint problem (Eq. 2) is a nonlinear integer program; the paper
 * resorts to greedy heuristics. For testing we enumerate every layout
 * with exactly C distinct experts per device (the search space the
 * greedy also inhabits), route each with lite routing and keep the
 * cheapest — giving a certified optimum-within-the-routing-family to
 * compare the tuner against. Complexity is C(E, C)^N, so this is only
 * usable for toy sizes (guarded by a hard limit).
 */

#ifndef LAER_PLANNER_REFERENCE_SOLVER_HH
#define LAER_PLANNER_REFERENCE_SOLVER_HH

#include "planner/layout_tuner.hh"

namespace laer
{

/**
 * Enumerate all feasible layouts (<= `max_states` combinations,
 * default 2^20) and return the best decision under lite routing.
 * Throws FatalError when the instance is too large.
 *
 * @param cluster     Topology the layouts are placed on.
 * @param routing     Routing matrix R to optimise for.
 * @param cost        Cost constants for the Eq. 2 evaluation.
 * @param capacity    Expert slots per device (C).
 * @param max_states  Enumeration abort threshold.
 * @return the certified-cheapest decision within the routing family.
 */
LayoutDecision exhaustiveLayoutSearch(const Cluster &cluster,
                                      const RoutingMatrix &routing,
                                      const CostParams &cost, int capacity,
                                      long max_states = 1 << 20);

} // namespace laer

#endif // LAER_PLANNER_REFERENCE_SOLVER_HH
