#include "planner/cost_model.hh"

#include <algorithm>

#include "core/error.hh"

namespace laer
{

CostBreakdown
timeCost(const Cluster &cluster, const CostParams &params,
         const RoutingPlan &plan)
{
    const int n = plan.numDevices();
    LAER_ASSERT(cluster.numDevices() == n, "cluster/plan size mismatch");

    // sum_{i,j,k} S[i][j][k] / bw(i,k), folded over experts first.
    Seconds pair_sum = 0.0;
    for (DeviceId i = 0; i < n; ++i) {
        for (DeviceId k = 0; k < n; ++k) {
            if (i == k)
                continue; // local tokens never touch the wire
            TokenCount tokens = 0;
            for (ExpertId j = 0; j < plan.numExperts(); ++j)
                tokens += plan.at(i, j, k);
            pair_sum += static_cast<double>(tokens) / cluster.bw(i, k);
        }
    }

    CostBreakdown cost;
    cost.comm = 4.0 * static_cast<double>(params.commBytesPerToken) *
                pair_sum;

    const std::vector<TokenCount> recv = plan.receivedTokens();
    TokenCount busiest = 0;
    for (TokenCount r : recv)
        busiest = std::max(busiest, r);
    const double fwd = params.compFlopsPerToken *
                       static_cast<double>(busiest) /
                       cluster.computeFlops();
    cost.comp = (3.0 + (params.checkpointing ? 1.0 : 0.0)) * fwd;
    return cost;
}

CostBreakdown
timeCostFromSums(const Cluster &cluster, const CostParams &params,
                 const std::vector<TokenCount> &recv_tokens,
                 Seconds pair_sum_over_bw_bytes)
{
    CostBreakdown cost;
    cost.comm = 4.0 * static_cast<double>(params.commBytesPerToken) *
                pair_sum_over_bw_bytes;
    TokenCount busiest = 0;
    for (TokenCount r : recv_tokens)
        busiest = std::max(busiest, r);
    const double fwd = params.compFlopsPerToken *
                       static_cast<double>(busiest) /
                       cluster.computeFlops();
    cost.comp = (3.0 + (params.checkpointing ? 1.0 : 0.0)) * fwd;
    return cost;
}

} // namespace laer
