/**
 * @file
 * The planner's analytical cost model (paper Sec. 3.2, Eq. 2).
 *
 *   T = T_comm + T_comp
 *   T_comm = 4 * V_comm * sum_{i,j,k} S[i][j][k] / bw(i, k)
 *   T_comp = (3 + F_ckpt) * max_i ( V_comp * recv_i / B_comp )
 *
 * The factor 4 counts dispatch/combine in forward and backward; the
 * factor (3 + F_ckpt) charges backward as twice forward plus an
 * optional recomputation pass.
 */

#ifndef LAER_PLANNER_COST_MODEL_HH
#define LAER_PLANNER_COST_MODEL_HH

#include "planner/types.hh"
#include "topo/cluster.hh"

namespace laer
{

/** Workload constants of the layer being planned. */
struct CostParams
{
    Bytes commBytesPerToken = 0;  //!< V_comm: bytes per token per hop
    Flops compFlopsPerToken = 0;  //!< V_comp: forward FLOPs per token
    bool checkpointing = false;   //!< F_ckpt
};

/** Decomposed objective value. */
struct CostBreakdown
{
    Seconds comm = 0.0;
    Seconds comp = 0.0;

    Seconds total() const { return comm + comp; }
};

/**
 * Evaluate Eq. 2 for a concrete (A, S) pair. The layout A enters only
 * through S (which must already respect it); it is accepted so debug
 * builds can assert consistency.
 *
 * @param cluster  Topology providing bw(i, k) and B_comp.
 * @param params   Layer workload constants (V_comm, V_comp, F_ckpt).
 * @param plan     Dense routing plan S.
 * @return the decomposed T_comm / T_comp objective value.
 */
CostBreakdown timeCost(const Cluster &cluster, const CostParams &params,
                       const RoutingPlan &plan);

/**
 * Fast path used in the tuner's inner loop: identical maths to
 * timeCost but fed with precomputed per-destination token sums to
 * avoid rebuilding volume matrices.
 *
 * @param cluster                Topology providing B_comp.
 * @param params                 Layer workload constants.
 * @param recv_tokens            Tokens received per destination device.
 * @param pair_sum_over_bw_bytes Precomputed sum of S[i][j][k] / bw(i, k)
 *                               in token-seconds per byte.
 * @return the decomposed objective, equal to timeCost on the same plan.
 */
CostBreakdown timeCostFromSums(const Cluster &cluster,
                               const CostParams &params,
                               const std::vector<TokenCount> &recv_tokens,
                               Seconds pair_sum_over_bw_bytes);

} // namespace laer

#endif // LAER_PLANNER_COST_MODEL_HH
