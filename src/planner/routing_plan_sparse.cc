#include "planner/routing_plan_sparse.hh"

#include "core/error.hh"

namespace laer
{

void
RoutingPlanSparse::clear(int n_devices, int n_experts)
{
    LAER_CHECK(n_devices > 0 && n_experts > 0, "empty routing plan");
    numDevices_ = n_devices;
    numExperts_ = n_experts;
    curRow_ = -1;
    rowOff_.assign(static_cast<std::size_t>(n_devices), 0);
    entries_.clear();
}

void
RoutingPlanSparse::add(DeviceId rank, ExpertId expert, DeviceId dst,
                       TokenCount tokens)
{
    LAER_ASSERT(rank >= 0 && rank < numDevices_ && expert >= 0 &&
                    expert < numExperts_ && dst >= 0 &&
                    dst < numDevices_,
                "sparse plan index out of range");
    LAER_ASSERT(rank >= curRow_,
                "sparse plan rows must be appended in rank order");
    // Ranks skipped since the last append have empty rows starting
    // (and ending) at the current entry count.
    for (int r = curRow_ + 1; r <= rank; ++r)
        rowOff_[static_cast<std::size_t>(r)] = entries_.size();
    curRow_ = rank;
    entries_.push_back({expert, dst, tokens});
}

const RoutingPlanSparse::Entry *
RoutingPlanSparse::row(DeviceId rank, std::size_t &count) const
{
    LAER_ASSERT(rank >= 0 && rank < numDevices_, "bad rank");
    if (rank > curRow_) {
        count = 0;
        return entries_.data() + entries_.size();
    }
    const std::size_t begin = rowOff_[static_cast<std::size_t>(rank)];
    const std::size_t end =
        rank == curRow_ ? entries_.size()
                        : rowOff_[static_cast<std::size_t>(rank) + 1];
    count = end - begin;
    return entries_.data() + begin;
}

RoutingPlan
RoutingPlanSparse::toDense() const
{
    RoutingPlan dense(numDevices_, numExperts_);
    for (DeviceId i = 0; i < numDevices_; ++i) {
        std::size_t count = 0;
        const Entry *entries = row(i, count);
        for (std::size_t t = 0; t < count; ++t)
            dense.at(i, entries[t].expert, entries[t].dst) +=
                entries[t].tokens;
    }
    return dense;
}

RoutingPlanSparse
RoutingPlanSparse::fromDense(const RoutingPlan &dense)
{
    RoutingPlanSparse sparse(dense.numDevices(), dense.numExperts());
    for (DeviceId i = 0; i < dense.numDevices(); ++i)
        for (ExpertId j = 0; j < dense.numExperts(); ++j)
            for (DeviceId k = 0; k < dense.numDevices(); ++k) {
                const TokenCount t = dense.at(i, j, k);
                if (t != 0)
                    sparse.add(i, j, k, t);
            }
    return sparse;
}

std::vector<TokenCount>
RoutingPlanSparse::receivedTokens() const
{
    std::vector<TokenCount> recv;
    receivedTokens(recv);
    return recv;
}

void
RoutingPlanSparse::receivedTokens(std::vector<TokenCount> &out) const
{
    out.assign(static_cast<std::size_t>(numDevices_), 0);
    for (const Entry &e : entries_)
        out[static_cast<std::size_t>(e.dst)] += e.tokens;
}

void
RoutingPlanSparse::portLoads(const Cluster &cluster,
                             Bytes bytes_per_token,
                             A2aPortLoads &out) const
{
    LAER_ASSERT(cluster.numDevices() == numDevices_,
                "cluster does not match plan");
    out.reset(numDevices_);
    for (DeviceId i = 0; i < numDevices_; ++i) {
        std::size_t count = 0;
        const Entry *entries = row(i, count);
        const auto src = static_cast<std::size_t>(i);
        for (std::size_t t = 0; t < count; ++t) {
            const DeviceId k = entries[t].dst;
            if (k == i)
                continue; // local tokens never touch the wire
            const Bytes bytes = entries[t].tokens * bytes_per_token;
            const auto dst = static_cast<std::size_t>(k);
            if (cluster.sameNode(i, k)) {
                out.sendIntra[src] += bytes;
                out.recvIntra[dst] += bytes;
            } else {
                out.sendInter[src] += bytes;
                out.recvInter[dst] += bytes;
            }
        }
    }
}

VolumeMatrix
RoutingPlanSparse::dispatchVolume(Bytes bytes_per_token) const
{
    VolumeMatrix volume = zeroVolume(numDevices_);
    for (DeviceId i = 0; i < numDevices_; ++i) {
        std::size_t count = 0;
        const Entry *entries = row(i, count);
        for (std::size_t t = 0; t < count; ++t)
            volume[static_cast<std::size_t>(i)]
                  [static_cast<std::size_t>(entries[t].dst)] +=
                entries[t].tokens * bytes_per_token;
    }
    return volume;
}

void
liteRoutingSparse(const Cluster &cluster, const RoutingMatrix &routing,
                  const ReplicaIndex &index, RoutingPlanSparse &plan)
{
    const int n = routing.numDevices();
    const int e = routing.numExperts();
    LAER_ASSERT(cluster.numDevices() == n,
                "cluster does not match routing matrix");
    LAER_ASSERT(index.numExperts() == e,
                "index does not match routing matrix");
    plan.clear(n, e);
    for (DeviceId rank = 0; rank < n; ++rank) {
        const NodeId my_node = cluster.node(rank);
        for (ExpertId j = 0; j < e; ++j) {
            const TokenCount tokens = routing.at(rank, j);
            if (tokens == 0)
                continue;
            std::size_t count = 0;
            const DeviceId *targets =
                index.targets(my_node, j, count);
            LAER_CHECK(count > 0,
                       "expert " << j << " has no replica anywhere");
            forEachLiteShare(targets, count, rank, tokens,
                             [&](DeviceId k, TokenCount share) {
                                 plan.add(rank, j, k, share);
                             });
        }
    }
}

} // namespace laer
