#include "planner/reference_solver.hh"

#include <cmath>
#include <vector>

#include "core/error.hh"
#include "planner/lite_routing.hh"

namespace laer
{

namespace
{

/** All C-subsets of {0..E-1}, as expert-id vectors. */
std::vector<std::vector<ExpertId>>
expertSubsets(int n_experts, int capacity)
{
    std::vector<std::vector<ExpertId>> out;
    std::vector<ExpertId> cur;
    // Iterative combination enumeration.
    std::vector<int> idx(capacity);
    for (int i = 0; i < capacity; ++i)
        idx[i] = i;
    if (capacity > n_experts)
        return out;
    for (;;) {
        out.emplace_back(idx.begin(), idx.end());
        int pos = capacity - 1;
        while (pos >= 0 && idx[pos] == n_experts - capacity + pos)
            --pos;
        if (pos < 0)
            break;
        ++idx[pos];
        for (int i = pos + 1; i < capacity; ++i)
            idx[i] = idx[i - 1] + 1;
    }
    return out;
}

} // namespace

LayoutDecision
exhaustiveLayoutSearch(const Cluster &cluster, const RoutingMatrix &routing,
                       const CostParams &cost, int capacity,
                       long max_states)
{
    const int n = cluster.numDevices();
    const int e = routing.numExperts();
    const auto subsets = expertSubsets(e, capacity);
    LAER_CHECK(!subsets.empty(), "capacity exceeds expert count");

    const double states =
        std::pow(static_cast<double>(subsets.size()), n);
    LAER_CHECK(states <= static_cast<double>(max_states),
               "instance too large for exhaustive search: "
                   << states << " states");

    std::vector<std::size_t> choice(n, 0);
    LayoutDecision best;
    bool have_best = false;
    long visited = 0;

    for (;;) {
        ++visited;
        ExpertLayout layout(n, e);
        for (DeviceId d = 0; d < n; ++d)
            for (ExpertId j : subsets[choice[d]])
                ++layout.at(d, j);

        // Skip infeasible layouts (some expert with no replica).
        bool ok = true;
        for (ExpertId j = 0; j < e && ok; ++j)
            ok = layout.replicaCount(j) >= 1;
        if (ok) {
            RoutingPlan plan = liteRouting(cluster, routing, layout);
            const CostBreakdown c = timeCost(cluster, cost, plan);
            if (!have_best || c.total() < best.cost.total()) {
                best.layout = std::move(layout);
                best.plan = std::move(plan);
                best.cost = c;
                have_best = true;
            }
        }

        // Odometer increment over per-device subset choices.
        int d = 0;
        while (d < n) {
            if (++choice[d] < subsets.size())
                break;
            choice[d] = 0;
            ++d;
        }
        if (d == n)
            break;
    }
    LAER_CHECK(have_best, "no feasible layout found");
    best.schemesTried = static_cast<int>(visited);
    return best;
}

} // namespace laer
