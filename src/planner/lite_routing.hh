/**
 * @file
 * Lite routing — the synchronous token dispatcher (paper Alg. 3).
 *
 * Runs independently on every source device using only the global
 * expert layout (no global routing exchange): for each expert, if the
 * source's node hosts replicas, tokens split evenly across those
 * intra-node replicas; otherwise they split evenly across all replicas
 * cluster-wide. Integer remainders are assigned round-robin starting
 * at a source-dependent offset so no single replica systematically
 * collects every remainder.
 */

#ifndef LAER_PLANNER_LITE_ROUTING_HH
#define LAER_PLANNER_LITE_ROUTING_HH

#include "planner/cost_model.hh"
#include "planner/types.hh"
#include "topo/cluster.hh"

namespace laer
{

/**
 * Route one source device's tokens (one row of R) given the global
 * layout. Fills the S[rank][j][k] slice of `plan`.
 *
 * @param cluster  Topology (node membership drives the replica choice).
 * @param routing  Routing matrix R.
 * @param layout   Global expert layout A.
 * @param rank     Source device whose row is routed.
 * @param plan     Output plan; only the `rank` slice is written.
 */
void liteRouteRank(const Cluster &cluster, const RoutingMatrix &routing,
                   const ExpertLayout &layout, DeviceId rank,
                   RoutingPlan &plan);

/**
 * Convenience: run liteRouteRank for every device.
 *
 * @param cluster  Topology.
 * @param routing  Routing matrix R.
 * @param layout   Global expert layout A.
 * @return the full dense routing plan S.
 */
RoutingPlan liteRouting(const Cluster &cluster,
                        const RoutingMatrix &routing,
                        const ExpertLayout &layout);

/** Aggregates produced by the fused route-and-score pass. */
struct LiteRoutingScore
{
    CostBreakdown cost;              //!< Eq. 2 value
    std::vector<TokenCount> recv;    //!< tokens per destination
};

/**
 * Fused lite routing + cost evaluation (the "efficient C++ core" of
 * Sec. 4): produces exactly the Eq. 2 objective that
 * timeCost(liteRouting(...)) would report, but without materialising
 * the dense N x E x N plan — the tuner's inner loop runs this once
 * per candidate replica scheme, keeping the solver inside the
 * per-layer time budget even at 1024 devices (Fig. 11).
 *
 * @param cluster  Topology.
 * @param routing  Routing matrix R.
 * @param layout   Candidate expert layout A.
 * @param params   Cost constants for the Eq. 2 evaluation.
 * @return the Eq. 2 breakdown and per-destination received tokens.
 */
LiteRoutingScore scoreLiteRouting(const Cluster &cluster,
                                  const RoutingMatrix &routing,
                                  const ExpertLayout &layout,
                                  const CostParams &params);

} // namespace laer

#endif // LAER_PLANNER_LITE_ROUTING_HH
