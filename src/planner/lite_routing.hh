/**
 * @file
 * Lite routing — the synchronous token dispatcher (paper Alg. 3).
 *
 * Runs independently on every source device using only the global
 * expert layout (no global routing exchange): for each expert, if the
 * source's node hosts replicas, tokens split evenly across those
 * intra-node replicas; otherwise they split evenly across all replicas
 * cluster-wide. Integer remainders are assigned round-robin starting
 * at a source-dependent offset so no single replica systematically
 * collects every remainder.
 *
 * The replica target lists depend only on the layout, not on the
 * source: `ReplicaIndex` precomputes them once per layout (global CSR
 * per expert plus per-(node, expert) intra lists) so the per-rank
 * dispatch is allocation-free. Every routing entry point — dense
 * `liteRouting`, the sparse builder in planner/routing_plan_sparse.hh
 * and the fused scorer `scoreLiteRouting` — shares this index and the
 * `forEachLiteShare` split rule, which is what keeps the three paths
 * exactly consistent.
 */

#ifndef LAER_PLANNER_LITE_ROUTING_HH
#define LAER_PLANNER_LITE_ROUTING_HH

#include "core/error.hh"
#include "planner/cost_model.hh"
#include "planner/types.hh"
#include "topo/cluster.hh"

namespace laer
{

/**
 * Per-layout precompute of Alg. 3's candidate replica sets: for every
 * expert the global replica list, and for every (node, expert) pair
 * the intra-node replica list — both device-ascending with replica
 * multiplicity, the exact order the Alg. 3 remainder rotation is
 * defined over. Stored as flat CSR arrays so a rebuild on a fresh
 * layout reuses the storage (the serving engine keeps one per layer
 * across steps).
 */
class ReplicaIndex
{
  public:
    ReplicaIndex() = default;

    /** Build for a layout (equivalent to rebuild on a fresh index). */
    ReplicaIndex(const Cluster &cluster, const ExpertLayout &layout)
    {
        rebuild(cluster, layout);
    }

    /**
     * Recompute the lists for a new layout, reusing storage.
     * @param cluster  Topology (node membership).
     * @param layout   Expert layout A the lists are drawn from.
     */
    void rebuild(const Cluster &cluster, const ExpertLayout &layout);

    int numExperts() const { return numExperts_; }
    int numNodes() const { return numNodes_; }

    /** Global replica list of expert j (devices, with multiplicity). */
    const DeviceId *all(ExpertId j) const
    {
        return allDev_.data() + allOff_[static_cast<std::size_t>(j)];
    }

    /** Length of the global replica list of expert j. */
    std::size_t allCount(ExpertId j) const
    {
        return allOff_[static_cast<std::size_t>(j) + 1] -
               allOff_[static_cast<std::size_t>(j)];
    }

    /** Intra-node replica list of expert j on node m. */
    const DeviceId *intra(NodeId m, ExpertId j) const
    {
        return intraDev_.data() + intraOff_[cell(m, j)];
    }

    /** Length of the intra-node replica list of expert j on node m. */
    std::size_t intraCount(NodeId m, ExpertId j) const
    {
        return intraOff_[cell(m, j) + 1] - intraOff_[cell(m, j)];
    }

    /**
     * Alg. 3 target set for a source on node m: the intra-node list
     * when non-empty, otherwise the global list.
     * @param m      Source node.
     * @param j      Expert.
     * @param count  Out: number of targets.
     * @return pointer to the target devices (with multiplicity).
     */
    const DeviceId *targets(NodeId m, ExpertId j,
                            std::size_t &count) const
    {
        const std::size_t ic = intraCount(m, j);
        if (ic > 0) {
            count = ic;
            return intra(m, j);
        }
        count = allCount(j);
        return all(j);
    }

  private:
    std::size_t cell(NodeId m, ExpertId j) const
    {
        return static_cast<std::size_t>(m) * numExperts_ +
               static_cast<std::size_t>(j);
    }

    int numExperts_ = 0;
    int numNodes_ = 0;
    std::vector<std::size_t> allOff_;   //!< E + 1 offsets
    std::vector<DeviceId> allDev_;      //!< global lists, concatenated
    std::vector<std::size_t> intraOff_; //!< nodes * E + 1 offsets
    std::vector<DeviceId> intraDev_;    //!< intra lists, concatenated
};

/**
 * Alg. 3 share split for one (source, expert) pair: tokens divide
 * evenly across the target list, with the integer remainder assigned
 * round-robin from slot (rank % |targets|). Emits (destination,
 * share) for every non-zero share, in rotation order — the common
 * core of the dense plan builder, the sparse plan builder and the
 * fused scorer.
 *
 * @param targets  Replica target list (ReplicaIndex::targets).
 * @param count    Number of targets; must be > 0.
 * @param rank     Source device (keys the remainder rotation).
 * @param tokens   Tokens to split; must be > 0.
 * @param emit     Callable emit(DeviceId dst, TokenCount share).
 */
template <typename Emit>
inline void
forEachLiteShare(const DeviceId *targets, std::size_t count,
                 DeviceId rank, TokenCount tokens, Emit &&emit)
{
    const auto n = static_cast<TokenCount>(count);
    const TokenCount base = tokens / n;
    TokenCount rem = tokens % n;
    const std::size_t start = static_cast<std::size_t>(rank) % count;
    for (std::size_t t = 0; t < count; ++t) {
        const std::size_t slot = (start + t) % count;
        TokenCount share = base;
        if (rem > 0) {
            ++share;
            --rem;
        }
        if (share == 0)
            continue;
        emit(targets[slot], share);
    }
}

/**
 * Route one source device's tokens (one row of R) given the global
 * layout. Fills the S[rank][j][k] slice of `plan`. Builds a
 * throw-away ReplicaIndex; loops over ranks should build the index
 * once and use the overload below.
 *
 * @param cluster  Topology (node membership drives the replica choice).
 * @param routing  Routing matrix R.
 * @param layout   Global expert layout A.
 * @param rank     Source device whose row is routed.
 * @param plan     Output plan; only the `rank` slice is written.
 */
void liteRouteRank(const Cluster &cluster, const RoutingMatrix &routing,
                   const ExpertLayout &layout, DeviceId rank,
                   RoutingPlan &plan);

/**
 * Allocation-free per-rank routing against a prebuilt ReplicaIndex.
 *
 * @param cluster  Topology (node membership drives the replica choice).
 * @param routing  Routing matrix R.
 * @param index    Replica lists of the layout being routed against.
 * @param rank     Source device whose row is routed.
 * @param plan     Output plan; only the `rank` slice is written.
 */
void liteRouteRank(const Cluster &cluster, const RoutingMatrix &routing,
                   const ReplicaIndex &index, DeviceId rank,
                   RoutingPlan &plan);

/**
 * Convenience: run liteRouteRank for every device (the ReplicaIndex
 * is built once and shared across ranks).
 *
 * @param cluster  Topology.
 * @param routing  Routing matrix R.
 * @param layout   Global expert layout A.
 * @return the full dense routing plan S.
 */
RoutingPlan liteRouting(const Cluster &cluster,
                        const RoutingMatrix &routing,
                        const ExpertLayout &layout);

/** Aggregates produced by the fused route-and-score pass. */
struct LiteRoutingScore
{
    CostBreakdown cost;              //!< Eq. 2 value
    std::vector<TokenCount> recv;    //!< tokens per destination
};

/**
 * Fused lite routing + cost evaluation (the "efficient C++ core" of
 * Sec. 4): produces exactly the Eq. 2 objective that
 * timeCost(liteRouting(...)) would report, but without materialising
 * the dense N x E x N plan — the tuner's inner loop runs this once
 * per candidate replica scheme, keeping the solver inside the
 * per-layer time budget even at 1024 devices (Fig. 11). Shares are
 * visited in the dense path's (source, expert, slot) order, so the
 * floating-point pair cost is bit-identical to the seed
 * implementation — scheme comparisons (and therefore every
 * fig11-14/tab04 output) are reproduced exactly.
 *
 * @param cluster  Topology.
 * @param routing  Routing matrix R.
 * @param layout   Candidate expert layout A.
 * @param params   Cost constants for the Eq. 2 evaluation.
 * @return the Eq. 2 breakdown and per-destination received tokens.
 */
LiteRoutingScore scoreLiteRouting(const Cluster &cluster,
                                  const RoutingMatrix &routing,
                                  const ExpertLayout &layout,
                                  const CostParams &params);

/**
 * scoreLiteRouting against a prebuilt ReplicaIndex, for callers that
 * already hold one for the layout (the layout overload simply builds
 * a throw-away index and forwards here).
 *
 * @param cluster  Topology.
 * @param routing  Routing matrix R.
 * @param index    Replica lists of the candidate layout.
 * @param params   Cost constants for the Eq. 2 evaluation.
 * @return the Eq. 2 breakdown and per-destination received tokens.
 */
LiteRoutingScore scoreLiteRouting(const Cluster &cluster,
                                  const RoutingMatrix &routing,
                                  const ReplicaIndex &index,
                                  const CostParams &params);

/**
 * Aggregated scorer for the 512-1024-device regime: the same Eq. 2
 * objective evaluated per (node, expert) instead of per (source,
 * expert, replica). Every source in a node shares the Alg. 3 target
 * list, so received tokens accumulate through a difference array over
 * the remainder rotation and the wire term reduces to two exact
 * integer token sums (intra-/inter-node) divided by the two
 * bandwidths — O(nodes * E * replicas) instead of
 * O(N * E * replicas). recv is exactly the dense plan's; the pair
 * cost is the mathematically identical sum with different
 * floating-point rounding (in fact tighter: two divisions instead of
 * one per share), which can re-order schemes whose costs tie at
 * machine precision — hence opt-in (TunerConfig::fastScoring) rather
 * than the default.
 *
 * @param cluster  Topology.
 * @param routing  Routing matrix R.
 * @param layout   Candidate expert layout A.
 * @param params   Cost constants for the Eq. 2 evaluation.
 * @return the Eq. 2 breakdown and per-destination received tokens.
 */
LiteRoutingScore scoreLiteRoutingFast(const Cluster &cluster,
                                      const RoutingMatrix &routing,
                                      const ExpertLayout &layout,
                                      const CostParams &params);

/** scoreLiteRoutingFast against a prebuilt ReplicaIndex. */
LiteRoutingScore scoreLiteRoutingFast(const Cluster &cluster,
                                      const RoutingMatrix &routing,
                                      const ReplicaIndex &index,
                                      const CostParams &params);

} // namespace laer

#endif // LAER_PLANNER_LITE_ROUTING_HH
