#include "planner/types.hh"

#include "core/error.hh"

namespace laer
{

RoutingMatrix::RoutingMatrix(int n_devices, int n_experts)
    : numDevices_(n_devices), numExperts_(n_experts),
      data_(static_cast<std::size_t>(n_devices) * n_experts, 0)
{
    LAER_CHECK(n_devices > 0 && n_experts > 0, "empty routing matrix");
}

TokenCount &
RoutingMatrix::at(DeviceId i, ExpertId j)
{
    LAER_ASSERT(i >= 0 && i < numDevices_ && j >= 0 && j < numExperts_,
                "routing index out of range");
    return data_[static_cast<std::size_t>(i) * numExperts_ + j];
}

TokenCount
RoutingMatrix::at(DeviceId i, ExpertId j) const
{
    LAER_ASSERT(i >= 0 && i < numDevices_ && j >= 0 && j < numExperts_,
                "routing index out of range");
    return data_[static_cast<std::size_t>(i) * numExperts_ + j];
}

std::vector<TokenCount>
RoutingMatrix::expertLoads() const
{
    std::vector<TokenCount> loads(numExperts_, 0);
    for (DeviceId i = 0; i < numDevices_; ++i)
        for (ExpertId j = 0; j < numExperts_; ++j)
            loads[j] += at(i, j);
    return loads;
}

std::vector<TokenCount>
RoutingMatrix::deviceTokens() const
{
    std::vector<TokenCount> tokens(numDevices_, 0);
    for (DeviceId i = 0; i < numDevices_; ++i)
        for (ExpertId j = 0; j < numExperts_; ++j)
            tokens[i] += at(i, j);
    return tokens;
}

TokenCount
RoutingMatrix::totalTokens() const
{
    TokenCount total = 0;
    for (TokenCount v : data_)
        total += v;
    return total;
}

ExpertLayout::ExpertLayout(int n_devices, int n_experts)
    : numDevices_(n_devices), numExperts_(n_experts),
      data_(static_cast<std::size_t>(n_devices) * n_experts, 0)
{
    LAER_CHECK(n_devices > 0 && n_experts > 0, "empty layout");
}

int &
ExpertLayout::at(DeviceId d, ExpertId e)
{
    LAER_ASSERT(d >= 0 && d < numDevices_ && e >= 0 && e < numExperts_,
                "layout index out of range");
    return data_[static_cast<std::size_t>(d) * numExperts_ + e];
}

int
ExpertLayout::at(DeviceId d, ExpertId e) const
{
    LAER_ASSERT(d >= 0 && d < numDevices_ && e >= 0 && e < numExperts_,
                "layout index out of range");
    return data_[static_cast<std::size_t>(d) * numExperts_ + e];
}

std::vector<DeviceId>
ExpertLayout::replicaDevices(ExpertId e) const
{
    std::vector<DeviceId> devs;
    for (DeviceId d = 0; d < numDevices_; ++d)
        if (at(d, e) > 0)
            devs.push_back(d);
    return devs;
}

int
ExpertLayout::replicaCount(ExpertId e) const
{
    int count = 0;
    for (DeviceId d = 0; d < numDevices_; ++d)
        count += at(d, e);
    return count;
}

int
ExpertLayout::slotsUsed(DeviceId d) const
{
    int count = 0;
    for (ExpertId e = 0; e < numExperts_; ++e)
        count += at(d, e);
    return count;
}

bool
ExpertLayout::feasible(int capacity) const
{
    for (DeviceId d = 0; d < numDevices_; ++d)
        if (slotsUsed(d) != capacity)
            return false;
    for (ExpertId e = 0; e < numExperts_; ++e)
        if (replicaCount(e) < 1)
            return false;
    return true;
}

RoutingPlan::RoutingPlan(int n_devices, int n_experts)
    : numDevices_(n_devices), numExperts_(n_experts),
      data_(static_cast<std::size_t>(n_devices) * n_experts * n_devices, 0)
{
    LAER_CHECK(n_devices > 0 && n_experts > 0, "empty routing plan");
}

std::size_t
RoutingPlan::index(DeviceId i, ExpertId j, DeviceId k) const
{
    LAER_ASSERT(i >= 0 && i < numDevices_ && j >= 0 && j < numExperts_ &&
                k >= 0 && k < numDevices_,
                "plan index out of range");
    return (static_cast<std::size_t>(i) * numExperts_ + j) * numDevices_ +
           k;
}

TokenCount &
RoutingPlan::at(DeviceId i, ExpertId j, DeviceId k)
{
    return data_[index(i, j, k)];
}

TokenCount
RoutingPlan::at(DeviceId i, ExpertId j, DeviceId k) const
{
    return data_[index(i, j, k)];
}

std::vector<TokenCount>
RoutingPlan::receivedTokens() const
{
    std::vector<TokenCount> recv(numDevices_, 0);
    for (DeviceId i = 0; i < numDevices_; ++i)
        for (ExpertId j = 0; j < numExperts_; ++j)
            for (DeviceId k = 0; k < numDevices_; ++k)
                recv[k] += at(i, j, k);
    return recv;
}

bool
RoutingPlan::conservesTokens(const RoutingMatrix &routing,
                             const ExpertLayout &layout) const
{
    if (routing.numDevices() != numDevices_ ||
        routing.numExperts() != numExperts_)
        return false;
    for (DeviceId i = 0; i < numDevices_; ++i) {
        for (ExpertId j = 0; j < numExperts_; ++j) {
            TokenCount sent = 0;
            for (DeviceId k = 0; k < numDevices_; ++k) {
                const TokenCount s = at(i, j, k);
                if (s < 0)
                    return false;
                if (s > 0 && layout.at(k, j) == 0)
                    return false; // token sent to a device without j
                sent += s;
            }
            if (sent != routing.at(i, j))
                return false;
        }
    }
    return true;
}

VolumeMatrix
RoutingPlan::dispatchVolume(Bytes bytes_per_token) const
{
    VolumeMatrix volume = zeroVolume(numDevices_);
    for (DeviceId i = 0; i < numDevices_; ++i)
        for (ExpertId j = 0; j < numExperts_; ++j)
            for (DeviceId k = 0; k < numDevices_; ++k)
                volume[i][k] += at(i, j, k) * bytes_per_token;
    return volume;
}

} // namespace laer
