/**
 * @file
 * Expert layout tuner (paper Alg. 2) — the asynchronous half of the
 * load-balancing planner.
 *
 * Builds a set of replica-count schemes (priority-queue proportional,
 * even, plus random perturbations up to |epsilon|), places each with
 * expert relocation (Alg. 1), routes with lite routing (Alg. 3),
 * scores with the cost model (Eq. 2) and returns the cheapest layout.
 * The flags exist for the Fig. 12 ablation ("pq" / "even" only).
 */

#ifndef LAER_PLANNER_LAYOUT_TUNER_HH
#define LAER_PLANNER_LAYOUT_TUNER_HH

#include <cstdint>

#include "planner/cost_model.hh"
#include "planner/types.hh"
#include "topo/cluster.hh"

namespace laer
{

class ThreadPool;

/** Tuner knobs; defaults match the paper's configuration. */
struct TunerConfig
{
    int capacity = 2;        //!< C, expert slots per device
    int setSize = 4;         //!< |epsilon| including the two seeds
    bool usePq = true;       //!< include proportional allocation
    bool useEven = true;     //!< include even allocation
    /** Materialise the dense routing plan S for the winning layout.
     * The production split (Fig. 7) leaves S to the synchronous
     * GPU-side dispatcher, so the CPU solver can skip it. */
    bool buildPlan = true;
    std::uint64_t seed = 1;  //!< perturbation randomness
    CostParams cost;         //!< layer workload constants
    /** Optional worker pool (core/thread_pool.hh) the scheme set is
     * scored on; null scores serially. The winner is reduced in
     * scheme order either way, so the decision is identical for any
     * thread count. Non-owning. */
    ThreadPool *pool = nullptr;
    /** Score schemes with the node-aggregated scorer
     * (scoreLiteRoutingFast) — the 512-1024-device configuration.
     * Mathematically identical costs with different (tighter)
     * floating-point rounding, so machine-precision scheme ties may
     * resolve differently than the seed path; off by default to keep
     * historical outputs byte-for-byte. */
    bool fastScoring = false;
};

/** Result of one tuner invocation. */
struct LayoutDecision
{
    ExpertLayout layout;   //!< A
    RoutingPlan plan;      //!< S under lite routing
    CostBreakdown cost;    //!< Eq. 2 value of (A, S)
    int schemesTried = 0;  //!< size of the evaluated replica set
    /** Solver wall-clock time for this invocation, milliseconds.
     * Measured inside tuneExpertLayout so every caller (engine retune
     * spans, planner benches) reports the same quantity. */
    double wallMs = 0.0;
};

/**
 * Solve the expert re-layout for one MoE layer given the routing
 * matrix observed in the previous iteration (paper Fig. 7: the CPU
 * solves for iteration t+1 while t computes).
 *
 * @param cluster  Topology the layouts are placed on.
 * @param routing  Observed routing matrix R of the last iteration.
 * @param config   Tuner knobs (capacity, scheme set, cost constants).
 * @return the cheapest evaluated layout with its plan and Eq. 2 cost.
 */
LayoutDecision tuneExpertLayout(const Cluster &cluster,
                                const RoutingMatrix &routing,
                                const TunerConfig &config);

} // namespace laer

#endif // LAER_PLANNER_LAYOUT_TUNER_HH
