#include "planner/lite_routing.hh"

#include <algorithm>

namespace laer
{

void
ReplicaIndex::rebuild(const Cluster &cluster, const ExpertLayout &layout)
{
    const int n = layout.numDevices();
    const int e = layout.numExperts();
    LAER_ASSERT(cluster.numDevices() == n,
                "cluster does not match layout");
    numExperts_ = e;
    numNodes_ = cluster.numNodes();

    // Counting pass over the layout's non-zero cells.
    allOff_.assign(static_cast<std::size_t>(e) + 1, 0);
    intraOff_.assign(static_cast<std::size_t>(numNodes_) * e + 1, 0);
    std::size_t total = 0;
    for (DeviceId d = 0; d < n; ++d) {
        const NodeId m = cluster.node(d);
        for (ExpertId j = 0; j < e; ++j) {
            const auto r = static_cast<std::size_t>(layout.at(d, j));
            allOff_[static_cast<std::size_t>(j) + 1] += r;
            intraOff_[cell(m, j) + 1] += r;
            total += r;
        }
    }
    for (std::size_t j = 0; j < static_cast<std::size_t>(e); ++j)
        allOff_[j + 1] += allOff_[j];
    for (std::size_t c = 0; c < intraOff_.size() - 1; ++c)
        intraOff_[c + 1] += intraOff_[c];

    // Fill pass. Devices are visited in ascending order, so every list
    // comes out device-ascending with multiplicity — the order Alg. 3
    // defines its remainder rotation over.
    allDev_.resize(total);
    intraDev_.resize(total);
    std::vector<std::size_t> all_fill(allOff_.begin(),
                                      allOff_.end() - 1);
    std::vector<std::size_t> intra_fill(intraOff_.begin(),
                                        intraOff_.end() - 1);
    for (DeviceId d = 0; d < n; ++d) {
        const NodeId m = cluster.node(d);
        for (ExpertId j = 0; j < e; ++j) {
            for (int r = 0; r < layout.at(d, j); ++r) {
                allDev_[all_fill[static_cast<std::size_t>(j)]++] = d;
                intraDev_[intra_fill[cell(m, j)]++] = d;
            }
        }
    }
}

namespace
{

/** Route one rank's row of R against the index into `plan`. */
void
routeRank(const Cluster &cluster, const RoutingMatrix &routing,
          const ReplicaIndex &index, DeviceId rank, RoutingPlan &plan)
{
    const NodeId my_node = cluster.node(rank);
    const int e = routing.numExperts();
    for (ExpertId j = 0; j < e; ++j) {
        const TokenCount tokens = routing.at(rank, j);
        if (tokens == 0)
            continue;
        std::size_t count = 0;
        const DeviceId *targets = index.targets(my_node, j, count);
        LAER_CHECK(count > 0,
                   "expert " << j << " has no replica anywhere");
        forEachLiteShare(targets, count, rank, tokens,
                         [&](DeviceId k, TokenCount share) {
                             plan.at(rank, j, k) += share;
                         });
    }
}

} // namespace

void
liteRouteRank(const Cluster &cluster, const RoutingMatrix &routing,
              const ExpertLayout &layout, DeviceId rank,
              RoutingPlan &plan)
{
    const int n = routing.numDevices();
    LAER_ASSERT(layout.numDevices() == n &&
                    layout.numExperts() == routing.numExperts(),
                "layout does not match routing matrix");
    LAER_ASSERT(rank >= 0 && rank < n, "bad source rank");
    const ReplicaIndex index(cluster, layout);
    routeRank(cluster, routing, index, rank, plan);
}

void
liteRouteRank(const Cluster &cluster, const RoutingMatrix &routing,
              const ReplicaIndex &index, DeviceId rank,
              RoutingPlan &plan)
{
    LAER_ASSERT(rank >= 0 && rank < routing.numDevices(),
                "bad source rank");
    routeRank(cluster, routing, index, rank, plan);
}

RoutingPlan
liteRouting(const Cluster &cluster, const RoutingMatrix &routing,
            const ExpertLayout &layout)
{
    const int n = routing.numDevices();
    LAER_ASSERT(layout.numDevices() == n &&
                    layout.numExperts() == routing.numExperts(),
                "layout does not match routing matrix");
    RoutingPlan plan(n, routing.numExperts());
    const ReplicaIndex index(cluster, layout);
    for (DeviceId rank = 0; rank < n; ++rank)
        routeRank(cluster, routing, index, rank, plan);
    return plan;
}

LiteRoutingScore
scoreLiteRouting(const Cluster &cluster, const RoutingMatrix &routing,
                 const ExpertLayout &layout, const CostParams &params)
{
    LAER_ASSERT(layout.numDevices() == routing.numDevices() &&
                    layout.numExperts() == routing.numExperts(),
                "layout does not match routing matrix");
    const ReplicaIndex index(cluster, layout);
    return scoreLiteRouting(cluster, routing, index, params);
}

LiteRoutingScore
scoreLiteRouting(const Cluster &cluster, const RoutingMatrix &routing,
                 const ReplicaIndex &index, const CostParams &params)
{
    const int n = routing.numDevices();
    const int e = routing.numExperts();
    LAER_ASSERT(cluster.numDevices() == n,
                "cluster does not match routing matrix");
    LAER_ASSERT(index.numExperts() == e,
                "index does not match routing matrix");

    LiteRoutingScore score;
    score.recv.assign(static_cast<std::size_t>(n), 0);
    Seconds pair_sum = 0.0;

    // Per-(source, expert, slot) evaluation in the exact order the
    // dense path visits shares, so the floating-point pair cost is
    // bit-identical to summing timeCost terms over liteRouting's
    // plan. scoreLiteRoutingFast computes the same value with two
    // divisions; it rounds differently, which can re-order schemes
    // whose costs tie to machine precision, so the default tuner path
    // keeps this order-preserving form.
    for (DeviceId rank = 0; rank < n; ++rank) {
        const NodeId my_node = cluster.node(rank);
        for (ExpertId j = 0; j < e; ++j) {
            const TokenCount tokens = routing.at(rank, j);
            if (tokens == 0)
                continue;
            std::size_t count = 0;
            const DeviceId *targets =
                index.targets(my_node, j, count);
            LAER_CHECK(count > 0,
                       "expert " << j << " has no replica anywhere");
            forEachLiteShare(
                targets, count, rank, tokens,
                [&](DeviceId k, TokenCount share) {
                    score.recv[static_cast<std::size_t>(k)] += share;
                    if (k != rank)
                        pair_sum += static_cast<double>(share) /
                                    cluster.bw(rank, k);
                });
        }
    }
    score.cost =
        timeCostFromSums(cluster, params, score.recv, pair_sum);
    return score;
}

LiteRoutingScore
scoreLiteRoutingFast(const Cluster &cluster,
                     const RoutingMatrix &routing,
                     const ExpertLayout &layout,
                     const CostParams &params)
{
    LAER_ASSERT(layout.numDevices() == routing.numDevices() &&
                    layout.numExperts() == routing.numExperts(),
                "layout does not match routing matrix");
    const ReplicaIndex index(cluster, layout);
    return scoreLiteRoutingFast(cluster, routing, index, params);
}

LiteRoutingScore
scoreLiteRoutingFast(const Cluster &cluster,
                     const RoutingMatrix &routing,
                     const ReplicaIndex &index, const CostParams &params)
{
    const int n = routing.numDevices();
    const int e = routing.numExperts();
    LAER_ASSERT(cluster.numDevices() == n,
                "cluster does not match routing matrix");
    LAER_ASSERT(index.numExperts() == e,
                "index does not match routing matrix");

    LiteRoutingScore score;
    score.recv.assign(static_cast<std::size_t>(n), 0);

    // Exact integer token sums crossing intra-node and inter-node
    // wires; the pair term of Eq. 2 is their weighted sum because the
    // two-level topology has exactly two bandwidth classes.
    TokenCount wire_intra = 0;
    TokenCount wire_inter = 0;

    // Difference array over remainder-rotation slots, sized for the
    // longest target list.
    std::size_t max_targets = 0;
    for (ExpertId j = 0; j < e; ++j)
        max_targets = std::max(max_targets, index.allCount(j));
    std::vector<TokenCount> diff(max_targets + 1, 0);

    const int nodes = cluster.numNodes();
    for (NodeId m = 0; m < nodes; ++m) {
        const DeviceId first = cluster.firstDeviceOf(m);
        const DeviceId last = std::min<DeviceId>(
            first + cluster.devicesPerNode(), n);
        for (ExpertId j = 0; j < e; ++j) {
            // All sources in node m share this Alg. 3 target list.
            std::size_t count = 0;
            const DeviceId *targets = index.targets(m, j, count);
            const bool intra_case = index.intraCount(m, j) > 0;

            // Any tokens from this node for expert j?
            TokenCount node_tokens = 0;
            for (DeviceId r = first; r < last; ++r)
                node_tokens += routing.at(r, j);
            if (node_tokens == 0)
                continue;
            LAER_CHECK(count > 0,
                       "expert " << j << " has no replica anywhere");

            // Per-source even split: everyone contributes
            // tokens / count to every slot; the remainders cover the
            // rotated window [rank % count, rank % count + rem).
            const auto cnt = static_cast<TokenCount>(count);
            TokenCount sum_base = 0;
            std::fill(diff.begin(), diff.begin() + count + 1, 0);
            for (DeviceId r = first; r < last; ++r) {
                const TokenCount tokens = routing.at(r, j);
                if (tokens == 0)
                    continue;
                sum_base += tokens / cnt;
                const auto rem =
                    static_cast<std::size_t>(tokens % cnt);
                if (rem == 0)
                    continue;
                const std::size_t start =
                    static_cast<std::size_t>(r) % count;
                const std::size_t end = start + rem;
                ++diff[start];
                --diff[std::min(end, count)];
                if (end > count) {
                    ++diff[0];
                    --diff[end - count];
                }
            }

            // Slot pass: fold the prefix sum into received tokens and
            // subtract the self-shares of sources that host their own
            // replica (local tokens never touch the wire). In the
            // global-fallback case no source of node m appears in the
            // list (its node hosts no replica), so everything crosses
            // the inter-node wire.
            TokenCount self_tokens = 0;
            TokenCount extra = 0;
            for (std::size_t s = 0; s < count; ++s) {
                extra += diff[s];
                const DeviceId k = targets[s];
                score.recv[static_cast<std::size_t>(k)] +=
                    sum_base + extra;
                if (!intra_case)
                    continue;
                const TokenCount own = routing.at(k, j);
                if (own == 0)
                    continue;
                const std::size_t start =
                    static_cast<std::size_t>(k) % count;
                const auto rem =
                    static_cast<std::size_t>(own % cnt);
                const std::size_t offset =
                    (s + count - start) % count;
                self_tokens += own / cnt +
                               (offset < rem ? 1 : 0);
            }
            if (intra_case)
                wire_intra += node_tokens - self_tokens;
            else
                wire_inter += node_tokens;
        }
    }

    const Seconds pair_sum =
        static_cast<double>(wire_intra) / cluster.intraBw() +
        static_cast<double>(wire_inter) / cluster.interBw();
    score.cost =
        timeCostFromSums(cluster, params, score.recv, pair_sum);
    return score;
}

} // namespace laer
