#include "planner/lite_routing.hh"

#include "core/error.hh"

namespace laer
{

void
liteRouteRank(const Cluster &cluster, const RoutingMatrix &routing,
              const ExpertLayout &layout, DeviceId rank, RoutingPlan &plan)
{
    const int n = routing.numDevices();
    const int e = routing.numExperts();
    LAER_ASSERT(layout.numDevices() == n && layout.numExperts() == e,
                "layout does not match routing matrix");
    LAER_ASSERT(rank >= 0 && rank < n, "bad source rank");

    const NodeId my_node = cluster.node(rank);
    for (ExpertId j = 0; j < e; ++j) {
        const TokenCount tokens = routing.at(rank, j);
        if (tokens == 0)
            continue;

        // Alg. 3 lines 2-3: candidate replica sets.
        std::vector<DeviceId> intra, all;
        for (DeviceId d = 0; d < n; ++d) {
            for (int r = 0; r < layout.at(d, j); ++r) {
                all.push_back(d);
                if (cluster.node(d) == my_node)
                    intra.push_back(d);
            }
        }
        LAER_CHECK(!all.empty(),
                   "expert " << j << " has no replica anywhere");

        const std::vector<DeviceId> &targets =
            intra.empty() ? all : intra;
        const auto count = static_cast<TokenCount>(targets.size());
        const TokenCount base = tokens / count;
        TokenCount rem = tokens % count;

        // Even split with a rotating remainder start (keyed on the
        // source rank) so remainders spread across replicas.
        const std::size_t start = static_cast<std::size_t>(rank) %
                                  targets.size();
        for (std::size_t t = 0; t < targets.size(); ++t) {
            const std::size_t slot = (start + t) % targets.size();
            TokenCount share = base;
            if (rem > 0) {
                ++share;
                --rem;
            }
            plan.at(rank, j, targets[slot]) += share;
        }
    }
}

RoutingPlan
liteRouting(const Cluster &cluster, const RoutingMatrix &routing,
            const ExpertLayout &layout)
{
    RoutingPlan plan(routing.numDevices(), routing.numExperts());
    for (DeviceId rank = 0; rank < routing.numDevices(); ++rank)
        liteRouteRank(cluster, routing, layout, rank, plan);
    return plan;
}

LiteRoutingScore
scoreLiteRouting(const Cluster &cluster, const RoutingMatrix &routing,
                 const ExpertLayout &layout, const CostParams &params)
{
    const int n = routing.numDevices();
    const int e = routing.numExperts();
    LAER_ASSERT(layout.numDevices() == n && layout.numExperts() == e,
                "layout does not match routing matrix");

    // Precompute replica target lists once per layout: the global
    // list per expert and the per-(node, expert) intra lists, with
    // multiplicity, in the same device order liteRouteRank uses.
    const int nodes = cluster.numNodes();
    std::vector<std::vector<DeviceId>> all(e);
    std::vector<std::vector<std::vector<DeviceId>>> intra(
        nodes, std::vector<std::vector<DeviceId>>(e));
    for (DeviceId d = 0; d < n; ++d) {
        const NodeId nd = cluster.node(d);
        for (ExpertId j = 0; j < e; ++j) {
            for (int r = 0; r < layout.at(d, j); ++r) {
                all[j].push_back(d);
                intra[nd][j].push_back(d);
            }
        }
    }

    LiteRoutingScore score;
    score.recv.assign(n, 0);
    Seconds pair_sum = 0.0;

    for (DeviceId rank = 0; rank < n; ++rank) {
        const NodeId my_node = cluster.node(rank);
        for (ExpertId j = 0; j < e; ++j) {
            const TokenCount tokens = routing.at(rank, j);
            if (tokens == 0)
                continue;
            const std::vector<DeviceId> &targets =
                intra[my_node][j].empty() ? all[j]
                                          : intra[my_node][j];
            LAER_CHECK(!targets.empty(),
                       "expert " << j << " has no replica anywhere");
            const auto count =
                static_cast<TokenCount>(targets.size());
            const TokenCount base = tokens / count;
            TokenCount rem = tokens % count;
            const std::size_t start =
                static_cast<std::size_t>(rank) % targets.size();
            for (std::size_t t = 0; t < targets.size(); ++t) {
                const std::size_t slot =
                    (start + t) % targets.size();
                TokenCount share = base;
                if (rem > 0) {
                    ++share;
                    --rem;
                }
                if (share == 0)
                    continue;
                const DeviceId k = targets[slot];
                score.recv[k] += share;
                if (k != rank)
                    pair_sum += static_cast<double>(share) /
                                cluster.bw(rank, k);
            }
        }
    }
    score.cost =
        timeCostFromSums(cluster, params, score.recv, pair_sum);
    return score;
}

} // namespace laer
