/**
 * @file
 * Replica allocation (paper Alg. 4, Appendix C).
 *
 * Decides how many replicas each expert receives out of the N*C total
 * restore slots. The priority-queue scheme repeatedly grants an extra
 * replica to the expert with the highest average load (load divided by
 * its current replica count); the even scheme ignores load and spreads
 * slots uniformly (Alg. 2 line 3).
 */

#ifndef LAER_PLANNER_REPLICA_ALLOC_HH
#define LAER_PLANNER_REPLICA_ALLOC_HH

#include <vector>

#include "core/rng.hh"
#include "planner/types.hh"

namespace laer
{

/**
 * Priority-queue proportional allocation: every expert starts with one
 * replica; remaining slots go to the expert whose load-per-replica is
 * currently highest. Replica counts are capped at n_devices (a device
 * hosting the same expert twice adds no balancing power). Requires
 * n_experts <= n_devices * capacity and capacity <= n_experts.
 *
 * @param expert_loads  Total tokens per expert (column sums of R).
 * @param n_devices     Cluster size N.
 * @param capacity      Expert slots per device (C).
 * @return replicas per expert, summing to n_devices * capacity.
 */
std::vector<int> replicaAllocation(const std::vector<TokenCount> &expert_loads,
                                   int n_devices, int capacity);

/**
 * Even allocation: floor(N*C / E) replicas each, remainder granted to
 * the highest-load experts so the slot budget is exactly consumed.
 *
 * @param expert_loads  Total tokens per expert (remainder tie-break).
 * @param n_devices     Cluster size N.
 * @param capacity      Expert slots per device (C).
 * @return replicas per expert, summing to n_devices * capacity.
 */
std::vector<int> evenAllocation(const std::vector<TokenCount> &expert_loads,
                                int n_devices, int capacity);

/**
 * Alg. 4's priority-queue discipline applied one level up: split
 * `total_units` indivisible device units (nodes, usually) between a
 * handful of pools proportionally to their observed load. Every pool
 * starts at `min_units`; each remaining unit goes to the pool whose
 * load-per-unit is currently highest (ties to the lower pool index,
 * so the result is deterministic). The serving control plane uses
 * this to derive the ideal prefill/decode device split from per-pool
 * pressure signals.
 *
 * @param pool_loads   Non-negative load signal per pool.
 * @param total_units  Units to hand out; must be >= pools * min_units.
 * @param min_units    Floor per pool (>= 1 keeps every pool alive).
 * @return units per pool, summing to total_units.
 */
std::vector<int> deviceShareAllocation(const std::vector<double> &pool_loads,
                                       int total_units, int min_units);

/**
 * Random perturbation used by the tuner (Alg. 2 lines 5-7): move one
 * replica from a random expert holding more than one to a random other
 * expert below `max_per_expert`. Feasibility (every expert keeps >= 1
 * replica, none exceeds the cap) is preserved.
 *
 * @param replicas        Feasible replica counts to perturb.
 * @param rng             Randomness source for the move choice.
 * @param max_per_expert  Replica cap per expert (usually N).
 * @return the perturbed counts; the input unchanged when no legal
 *         move exists.
 */
std::vector<int> perturbAllocation(std::vector<int> replicas, Rng &rng,
                                   int max_per_expert);

} // namespace laer

#endif // LAER_PLANNER_REPLICA_ALLOC_HH
