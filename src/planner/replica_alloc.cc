#include "planner/replica_alloc.hh"

#include <algorithm>
#include <numeric>
#include <queue>

#include "core/error.hh"

namespace laer
{

std::vector<int>
replicaAllocation(const std::vector<TokenCount> &expert_loads,
                  int n_devices, int capacity)
{
    const int e = static_cast<int>(expert_loads.size());
    const int slots = n_devices * capacity;
    LAER_CHECK(e > 0, "no experts to allocate");
    LAER_CHECK(slots >= e,
               "capacity too small: " << slots << " slots for " << e
                                      << " experts");
    LAER_CHECK(capacity <= e,
               "per-device capacity exceeds the expert count");

    std::vector<int> rep(e, 1);

    // Max-heap keyed on average load per replica (Alg. 4 lines 2-4).
    // Experts at the n_devices cap leave the queue: an extra replica
    // would have to duplicate on some device, which balances nothing.
    using Entry = std::pair<double, ExpertId>;
    std::priority_queue<Entry> queue;
    for (ExpertId i = 0; i < e; ++i)
        if (rep[i] < n_devices)
            queue.emplace(static_cast<double>(expert_loads[i]), i);

    int granted = e;
    while (granted < slots) {
        LAER_ASSERT(!queue.empty(), "replica budget exceeds E*N");
        const auto [avg, expert] = queue.top();
        (void)avg;
        queue.pop();
        ++rep[expert];
        ++granted;
        if (rep[expert] < n_devices)
            queue.emplace(static_cast<double>(expert_loads[expert]) /
                              rep[expert],
                          expert);
    }
    return rep;
}

std::vector<int>
evenAllocation(const std::vector<TokenCount> &expert_loads,
               int n_devices, int capacity)
{
    const int e = static_cast<int>(expert_loads.size());
    const int slots = n_devices * capacity;
    LAER_CHECK(e > 0, "no experts to allocate");
    LAER_CHECK(slots >= e,
               "capacity too small: " << slots << " slots for " << e
                                      << " experts");
    LAER_CHECK(capacity <= e,
               "per-device capacity exceeds the expert count");

    std::vector<int> rep(e, slots / e);
    int leftover = slots - (slots / e) * e;

    // Hand remainders to the highest-load experts first.
    std::vector<ExpertId> order(e);
    std::iota(order.begin(), order.end(), 0);
    std::stable_sort(order.begin(), order.end(),
                     [&](ExpertId a, ExpertId b) {
                         return expert_loads[a] > expert_loads[b];
                     });
    for (int i = 0; i < leftover; ++i)
        ++rep[order[i]];
    return rep;
}

std::vector<int>
deviceShareAllocation(const std::vector<double> &pool_loads,
                      int total_units, int min_units)
{
    const int pools = static_cast<int>(pool_loads.size());
    LAER_CHECK(pools >= 1, "no pools to allocate units to");
    LAER_CHECK(min_units >= 1, "every pool needs at least one unit");
    LAER_CHECK(total_units >= pools * min_units,
               "unit budget " << total_units << " cannot give "
                              << pools << " pools " << min_units
                              << " units each");
    for (const double load : pool_loads)
        LAER_CHECK(load >= 0.0, "pool load cannot be negative");

    std::vector<int> units(pools, min_units);
    // Max-heap on load-per-unit; ties break to the lower pool index so
    // the allocation is deterministic (greater<> on (-load, index)
    // would invert the index order, so key on (load, -index)).
    using Entry = std::pair<double, int>;
    std::priority_queue<Entry> queue;
    for (int p = 0; p < pools; ++p)
        queue.emplace(pool_loads[p] / units[p], -p);
    for (int granted = pools * min_units; granted < total_units;
         ++granted) {
        const auto [avg, neg_index] = queue.top();
        (void)avg;
        queue.pop();
        const int p = -neg_index;
        ++units[p];
        queue.emplace(pool_loads[p] / units[p], -p);
    }
    return units;
}

std::vector<int>
perturbAllocation(std::vector<int> replicas, Rng &rng,
                  int max_per_expert)
{
    const int e = static_cast<int>(replicas.size());
    std::vector<ExpertId> donors, takers;
    for (ExpertId i = 0; i < e; ++i) {
        if (replicas[i] > 1)
            donors.push_back(i);
        if (replicas[i] < max_per_expert)
            takers.push_back(i);
    }
    if (donors.empty() || takers.empty() || e < 2)
        return replicas;

    const ExpertId from =
        donors[static_cast<std::size_t>(rng.uniformInt(
            0, static_cast<int>(donors.size()) - 1))];
    for (int attempt = 0; attempt < 16; ++attempt) {
        const ExpertId to =
            takers[static_cast<std::size_t>(rng.uniformInt(
                0, static_cast<int>(takers.size()) - 1))];
        if (to == from)
            continue;
        --replicas[from];
        ++replicas[to];
        return replicas;
    }
    return replicas;
}

} // namespace laer
