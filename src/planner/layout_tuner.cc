#include "planner/layout_tuner.hh"

#include <utility>
#include <vector>

#include "core/error.hh"
#include "core/rng.hh"
#include "planner/lite_routing.hh"
#include "planner/relocation.hh"
#include "planner/replica_alloc.hh"

namespace laer
{

LayoutDecision
tuneExpertLayout(const Cluster &cluster, const RoutingMatrix &routing,
                 const TunerConfig &config)
{
    LAER_CHECK(config.usePq || config.useEven,
               "tuner needs at least one allocation scheme");
    LAER_CHECK(cluster.numDevices() == routing.numDevices(),
               "cluster does not match routing matrix");

    const std::vector<TokenCount> loads = routing.expertLoads();
    const int n = cluster.numDevices();

    // Alg. 2 lines 1-7: build the replica-scheme set.
    std::vector<std::vector<int>> replicas_set;
    if (config.usePq)
        replicas_set.push_back(
            replicaAllocation(loads, n, config.capacity));
    if (config.useEven)
        replicas_set.push_back(evenAllocation(loads, n, config.capacity));

    Rng rng(config.seed);
    while (static_cast<int>(replicas_set.size()) < config.setSize) {
        const std::size_t pick = static_cast<std::size_t>(
            rng.uniformInt(0, static_cast<int>(replicas_set.size()) - 1));
        replicas_set.push_back(
            perturbAllocation(replicas_set[pick], rng, n));
    }

    // Alg. 2 lines 9-15: place, route, score, keep the best. The
    // inner loop uses the fused route-and-score pass; the dense plan
    // is materialised once, for the winning layout only.
    LayoutDecision best;
    bool have_best = false;
    for (const auto &replicas : replicas_set) {
        ExpertLayout layout =
            expertRelocation(cluster, replicas, loads, config.capacity);
        const LiteRoutingScore score =
            scoreLiteRouting(cluster, routing, layout, config.cost);
        if (!have_best || score.cost.total() < best.cost.total()) {
            best.layout = std::move(layout);
            best.cost = score.cost;
            have_best = true;
        }
    }
    best.schemesTried = static_cast<int>(replicas_set.size());
    LAER_ASSERT(have_best, "tuner evaluated no schemes");
    if (config.buildPlan)
        best.plan = liteRouting(cluster, routing, best.layout);
    return best;
}

} // namespace laer
