#include "planner/layout_tuner.hh"

#include <chrono>
#include <utility>
#include <vector>

#include "core/error.hh"
#include "core/rng.hh"
#include "core/thread_pool.hh"
#include "planner/lite_routing.hh"
#include "planner/relocation.hh"
#include "planner/replica_alloc.hh"

namespace laer
{

LayoutDecision
tuneExpertLayout(const Cluster &cluster, const RoutingMatrix &routing,
                 const TunerConfig &config)
{
    LAER_CHECK(config.usePq || config.useEven,
               "tuner needs at least one allocation scheme");
    LAER_CHECK(cluster.numDevices() == routing.numDevices(),
               "cluster does not match routing matrix");

    const auto wall_start = std::chrono::steady_clock::now();

    const std::vector<TokenCount> loads = routing.expertLoads();
    const int n = cluster.numDevices();

    // Alg. 2 lines 1-7: build the replica-scheme set.
    std::vector<std::vector<int>> replicas_set;
    if (config.usePq)
        replicas_set.push_back(
            replicaAllocation(loads, n, config.capacity));
    if (config.useEven)
        replicas_set.push_back(evenAllocation(loads, n, config.capacity));

    Rng rng(config.seed);
    while (static_cast<int>(replicas_set.size()) < config.setSize) {
        const std::size_t pick = static_cast<std::size_t>(
            rng.uniformInt(0, static_cast<int>(replicas_set.size()) - 1));
        replicas_set.push_back(
            perturbAllocation(replicas_set[pick], rng, n));
    }

    // Alg. 2 lines 9-15: place, route, score, keep the best. The
    // inner loop uses the fused route-and-score pass; the dense plan
    // is materialised once, for the winning layout only. Scheme
    // evaluations are independent, so they fan out over the optional
    // worker pool into per-scheme slots; the winner is then reduced
    // serially in scheme order (first strictly-cheaper wins), which
    // makes the decision identical for any thread count.
    const int schemes = static_cast<int>(replicas_set.size());
    std::vector<ExpertLayout> layouts(replicas_set.size());
    std::vector<CostBreakdown> costs(replicas_set.size());
    const auto evaluate = [&](int s) {
        const auto i = static_cast<std::size_t>(s);
        layouts[i] = expertRelocation(cluster, replicas_set[i], loads,
                                      config.capacity);
        costs[i] = (config.fastScoring
                        ? scoreLiteRoutingFast(cluster, routing,
                                               layouts[i], config.cost)
                        : scoreLiteRouting(cluster, routing,
                                           layouts[i], config.cost))
                       .cost;
    };
    if (config.pool != nullptr)
        config.pool->parallelFor(schemes, evaluate);
    else
        for (int s = 0; s < schemes; ++s)
            evaluate(s);

    std::size_t winner = 0;
    for (std::size_t s = 1; s < layouts.size(); ++s)
        if (costs[s].total() < costs[winner].total())
            winner = s;

    LayoutDecision best;
    best.layout = std::move(layouts[winner]);
    best.cost = costs[winner];
    best.schemesTried = schemes;
    if (config.buildPlan)
        best.plan = liteRouting(cluster, routing, best.layout);
    best.wallMs = std::chrono::duration<double, std::milli>(
                      std::chrono::steady_clock::now() - wall_start)
                      .count();
    return best;
}

} // namespace laer
