/**
 * @file
 * Planner data types: routing matrix R, expert layout A, token routing
 * plan S (paper Tab. 1 notation).
 *
 * R[i][j]  — tokens on device i whose gate selected expert j.
 * A[d][e]  — number of replicas of expert e restored on device d
 *            (0/1 in practice; counts are supported for robustness).
 * S[i][j][k] — tokens from device i for expert j sent to device k.
 *
 * RoutingPlan stores S dense — the reference semantics, fine up to a
 * few hundred devices. The serving/tuner hot path uses the compressed
 * sibling in planner/routing_plan_sparse.hh, which is asserted
 * equivalent entry-for-entry.
 */

#ifndef LAER_PLANNER_TYPES_HH
#define LAER_PLANNER_TYPES_HH

#include <vector>

#include "comm/collectives.hh"
#include "core/types.hh"

namespace laer
{

/** Dense N x E token-count matrix produced by the gating network. */
class RoutingMatrix
{
  public:
    RoutingMatrix() = default;

    /** Create an all-zero N x E matrix. */
    RoutingMatrix(int n_devices, int n_experts);

    int numDevices() const { return numDevices_; }
    int numExperts() const { return numExperts_; }

    /** Mutable token count on device i for expert j. */
    TokenCount &at(DeviceId i, ExpertId j);

    /** Token count on device i for expert j. */
    TokenCount at(DeviceId i, ExpertId j) const;

    /** Column sums: total tokens destined for each expert. */
    std::vector<TokenCount> expertLoads() const;

    /** Row sums: tokens generated on each device. */
    std::vector<TokenCount> deviceTokens() const;

    /** Grand total of routed tokens (counting top-k multiplicity). */
    TokenCount totalTokens() const;

  private:
    int numDevices_ = 0;
    int numExperts_ = 0;
    std::vector<TokenCount> data_;
};

/** Replica placement of experts onto devices. */
class ExpertLayout
{
  public:
    ExpertLayout() = default;

    /** Create an empty layout for N devices and E experts. */
    ExpertLayout(int n_devices, int n_experts);

    int numDevices() const { return numDevices_; }
    int numExperts() const { return numExperts_; }

    /** Mutable replica count of expert e on device d. */
    int &at(DeviceId d, ExpertId e);

    /** Replica count of expert e on device d. */
    int at(DeviceId d, ExpertId e) const;

    /** Devices hosting at least one replica of expert e. */
    std::vector<DeviceId> replicaDevices(ExpertId e) const;

    /** Total replicas of expert e across the cluster. */
    int replicaCount(ExpertId e) const;

    /** Number of expert slots used on device d (sum of counts). */
    int slotsUsed(DeviceId d) const;

    /**
     * True iff every device uses exactly `capacity` slots and every
     * expert has at least one replica — the feasibility conditions of
     * the optimisation problem (Sec. 3.2).
     */
    bool feasible(int capacity) const;

    /** Equality (same placement). */
    bool operator==(const ExpertLayout &other) const
    {
        return numDevices_ == other.numDevices_ &&
               numExperts_ == other.numExperts_ && data_ == other.data_;
    }

  private:
    int numDevices_ = 0;
    int numExperts_ = 0;
    std::vector<int> data_;
};

/** Token routing decision S[i][j][k]. */
class RoutingPlan
{
  public:
    RoutingPlan() = default;

    /** Create an all-zero N x E x N plan. */
    RoutingPlan(int n_devices, int n_experts);

    int numDevices() const { return numDevices_; }
    int numExperts() const { return numExperts_; }

    /** Mutable tokens from device i for expert j routed to device k. */
    TokenCount &at(DeviceId i, ExpertId j, DeviceId k);

    /** Tokens from device i for expert j routed to device k. */
    TokenCount at(DeviceId i, ExpertId j, DeviceId k) const;

    /** Tokens device k receives for computation: sum_{i,j} S[i][j][k]. */
    std::vector<TokenCount> receivedTokens() const;

    /**
     * Paper constraint (4): for all (i, j), sum_k S[i][j][k] == R[i][j]
     * and tokens only flow to devices hosting the expert.
     */
    bool conservesTokens(const RoutingMatrix &routing,
                         const ExpertLayout &layout) const;

    /**
     * Dispatch volume matrix in bytes (per-token payload
     * `bytes_per_token`); diagonal kept for completeness.
     */
    VolumeMatrix dispatchVolume(Bytes bytes_per_token) const;

  private:
    std::size_t index(DeviceId i, ExpertId j, DeviceId k) const;

    int numDevices_ = 0;
    int numExperts_ = 0;
    std::vector<TokenCount> data_;
};

} // namespace laer

#endif // LAER_PLANNER_TYPES_HH
