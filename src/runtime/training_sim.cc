#include "runtime/training_sim.hh"

#include <chrono>
#include <cmath>

#include "core/error.hh"
#include "core/stats.hh"
#include "planner/lite_routing.hh"
#include "planner/relocation.hh"
#include "planner/replica_alloc.hh"

namespace laer
{

namespace
{

/** Even layout used before any load information exists. */
ExpertLayout
initialEvenLayout(const Cluster &cluster, int n_experts, int capacity)
{
    const std::vector<TokenCount> flat(n_experts, 1);
    return expertRelocation(
        cluster, evenAllocation(flat, cluster.numDevices(), capacity),
        flat, capacity);
}

} // namespace

namespace
{

/** Expert slots per device for the static EP grouping. */
int
epCapacityOf(const SimulatorConfig &config)
{
    if (config.system == SystemKind::Megatron &&
        config.megatronCapacity > 0)
        return config.megatronCapacity;
    return config.capacity;
}

} // namespace

TrainingSimulator::TrainingSimulator(const Cluster &cluster,
                                     const SimulatorConfig &config)
    : cluster_(cluster), config_(config),
      grouping_(cluster,
                config.model.numExperts / epCapacityOf(config),
                /*span_nodes=*/true),
      staticLayout_(staticEpLayout(cluster, config.model.numExperts,
                                   grouping_))
{
    config_.model.validate();
    LAER_CHECK(config_.capacity >= 1, "capacity must be positive");
    LAER_CHECK(config_.model.numExperts % config_.capacity == 0,
               "experts must divide by per-device capacity");
    LAER_CHECK(config_.simulatedLayers >= 1, "need at least one layer");

    const TokenCount per_step =
        static_cast<TokenCount>(cluster_.numDevices()) *
        config_.tokensPerDevice;
    microSteps_ = static_cast<int>(
        (config_.globalBatchTokens + per_step - 1) / per_step);

    for (int l = 0; l < config_.simulatedLayers; ++l) {
        RoutingModel rm = config_.routing;
        rm.numDevices = cluster_.numDevices();
        rm.numExperts = config_.model.numExperts;
        rm.topK = config_.model.topK;
        rm.tokensPerDevice = config_.tokensPerDevice;
        rm.seed = config_.seed + 1000003ULL * l;
        generators_.emplace_back(rm);
        currentLayouts_.push_back(initialEvenLayout(
            cluster_, config_.model.numExperts, config_.capacity));
    }

    if (config_.system == SystemKind::FlexMoe) {
        FlexMoeConfig fc;
        fc.capacity = config_.capacity;
        fc.maxMovesPerStep = config_.flexMaxMoves;
        fc.expertBytes = config_.model.expertParamBytes();
        fc.cost.commBytesPerToken = config_.model.tokenBytes();
        fc.cost.compFlopsPerToken = config_.model.expertFlopsPerToken();
        fc.cost.checkpointing = config_.checkpointing;
        for (int l = 0; l < config_.simulatedLayers; ++l)
            flexPlanners_.push_back(std::make_unique<FlexMoePlanner>(
                cluster_, config_.model.numExperts, fc));
    }
    if (config_.system == SystemKind::SmartMoe) {
        SmartMoeConfig sc;
        sc.capacity = config_.capacity;
        sc.period = config_.smartPeriod;
        sc.expertBytes = config_.model.expertParamBytes();
        for (int l = 0; l < config_.simulatedLayers; ++l)
            smartPlanners_.push_back(std::make_unique<SmartMoePlanner>(
                cluster_, config_.model.numExperts, sc));
    }
}

TrainingSimulator::~TrainingSimulator() = default;

IterationResult
TrainingSimulator::step()
{
    const int sim_layers = config_.simulatedLayers;
    const int n = cluster_.numDevices();
    IterationResult result;

    // 1. Gate outputs of this iteration.
    std::vector<RoutingMatrix> routing;
    routing.reserve(sim_layers);
    for (int l = 0; l < sim_layers; ++l)
        routing.push_back(generators_[l].next());

    // 2. Expert layouts per the active system.
    if (config_.system == SystemKind::Laer && iteration_ > 0) {
        // Asynchronous tuner: solves from the PREVIOUS iteration's
        // routing (Fig. 7); we measure the real wall-clock it takes.
        TunerConfig tc = config_.tuner;
        tc.capacity = config_.capacity;
        // The dispatcher routes the CURRENT iteration's tokens below;
        // the solver only needs to emit the layout (Fig. 7).
        tc.buildPlan = false;
        tc.cost.commBytesPerToken = config_.model.tokenBytes();
        tc.cost.compFlopsPerToken = config_.model.expertFlopsPerToken();
        tc.cost.checkpointing = config_.checkpointing;
        const auto t0 = std::chrono::steady_clock::now();
        for (int l = 0; l < sim_layers; ++l) {
            tc.seed = config_.seed + 7919ULL * iteration_ + l;
            currentLayouts_[l] =
                tuneExpertLayout(cluster_, prevRouting_[l], tc).layout;
        }
        const auto t1 = std::chrono::steady_clock::now();
        result.plannerWall =
            std::chrono::duration<double>(t1 - t0).count();
    } else if (config_.system == SystemKind::FlexMoe && iteration_ > 0) {
        for (int l = 0; l < sim_layers; ++l) {
            const FlexMoeStep fs =
                flexPlanners_[l]->update(prevRouting_[l]);
            result.migration += fs.migrationTime;
            currentLayouts_[l] = flexPlanners_[l]->layout();
        }
    } else if (config_.system == SystemKind::SmartMoe &&
               iteration_ > 0) {
        for (int l = 0; l < sim_layers; ++l) {
            const SmartMoeStep ss =
                smartPlanners_[l]->observe(prevRouting_[l]);
            result.migration += ss.migrationTime;
            currentLayouts_[l] = smartPlanners_[l]->layout();
        }
    } else if (config_.system == SystemKind::FsdpEp ||
               config_.system == SystemKind::Megatron) {
        for (int l = 0; l < sim_layers; ++l)
            currentLayouts_[l] = staticLayout_;
    }

    // 3. Token dispatch on the current iteration's routing.
    std::vector<RoutingPlan> plans;
    plans.reserve(sim_layers);
    std::vector<double> layer_imbalance(sim_layers);
    for (int l = 0; l < sim_layers; ++l) {
        if (config_.system == SystemKind::FsdpEp ||
            config_.system == SystemKind::Megatron) {
            plans.push_back(staticEpRouting(routing[l], grouping_,
                                            currentLayouts_[l]));
        } else {
            plans.push_back(liteRouting(cluster_, routing[l],
                                        currentLayouts_[l]));
        }
        const std::vector<TokenCount> recv = plans[l].receivedTokens();
        std::vector<double> loads(recv.begin(), recv.end());
        layer_imbalance[l] = imbalanceFactor(loads);
    }
    result.maxRelTokens = mean(layer_imbalance);

    // 4. Measure the timeline.
    IterationSpec spec;
    spec.model = &config_.model;
    spec.system = config_.system;
    spec.flags = config_.flags;
    spec.checkpointing = config_.checkpointing;
    spec.recompute = config_.recompute;
    spec.seqLen = config_.seqLen;
    spec.tokensPerDevice = config_.tokensPerDevice;
    spec.tpDegree = config_.tpDegree;
    spec.expertTpDegree = config_.megatronExpertTp;
    spec.capacityHint = config_.capacity;
    for (int l = 0; l < sim_layers; ++l)
        spec.layerPlans.push_back(&plans[l]);

    spec.withGradSync = false;
    const MicroBatchResult plain = simulateMicroBatch(cluster_, spec);
    spec.withGradSync = true;
    const MicroBatchResult synced = simulateMicroBatch(cluster_, spec);

    // Scale the simulated layer block up to the full model depth; the
    // LM head and optimizer are charged once.
    const double ratio = static_cast<double>(config_.model.layers) /
                         sim_layers;
    const Seconds head = 3.0 * lmHeadForwardTime(
                                   config_.model,
                                   config_.tokensPerDevice,
                                   spec.tpDegree,
                                   cluster_.computeFlops());
    auto scale_up = [&](Seconds per_block, Seconds head_part) {
        return (per_block - head_part) * ratio + head_part;
    };
    const Seconds t_plain = scale_up(plain.makespan, head);
    const Seconds t_sync = scale_up(synced.makespan, head);
    const Seconds opt = optimizerStepTime(config_.model, n);

    result.time = (microSteps_ - 1) * t_plain + t_sync + opt +
                  result.migration;
    result.expert = microSteps_ * synced.expertBusy * ratio;
    result.others =
        microSteps_ * scale_up(synced.othersBusy, head) + opt;
    result.exposedPrefetch =
        microSteps_ * synced.exposedPrefetch * ratio;
    result.exposedGradSync = synced.exposedGradSync * ratio;
    // A2A as a profiler attributes it: everything that is neither
    // compute nor exposed parameter traffic is time spent inside (or
    // waiting in) the token All-to-All ops.
    const Seconds a2a_busy = microSteps_ * synced.a2aBusy * ratio;
    const Seconds residual = result.time - result.expert -
                             result.others - result.exposedPrefetch -
                             result.exposedGradSync -
                             result.migration;
    result.a2a = std::max(a2a_busy, residual);
    result.tokensPerSecond =
        static_cast<double>(config_.globalBatchTokens) / result.time;

    prevRouting_ = std::move(routing);
    ++iteration_;
    return result;
}

std::vector<IterationResult>
TrainingSimulator::run(int n)
{
    std::vector<IterationResult> results;
    results.reserve(n);
    for (int i = 0; i < n; ++i)
        results.push_back(step());
    return results;
}

Seconds
TrainingSimulator::meanTime(const std::vector<IterationResult> &results)
{
    if (results.empty())
        return 0.0;
    Seconds sum = 0.0;
    for (const auto &r : results)
        sum += r.time;
    return sum / static_cast<double>(results.size());
}

} // namespace laer
