#include "runtime/iteration.hh"

#include <algorithm>

#include "comm/collectives.hh"
#include "core/error.hh"
#include "model/memory.hh"

namespace laer
{

const char *
systemName(SystemKind kind)
{
    switch (kind) {
      case SystemKind::Laer:
        return "LAER-MoE";
      case SystemKind::FsdpEp:
        return "FSDP+EP";
      case SystemKind::Megatron:
        return "Megatron";
      case SystemKind::FlexMoe:
        return "FlexMoE";
      case SystemKind::SmartMoe:
        return "SmartMoE";
    }
    return "?";
}

namespace
{

/** True for systems running on the FSEP executor. */
bool
usesFsep(SystemKind kind)
{
    return kind == SystemKind::Laer || kind == SystemKind::FlexMoe ||
           kind == SystemKind::SmartMoe;
}

/** Devices of the node hosting `d` (the FSDP shard group). */
std::vector<DeviceId>
nodeGroup(const Cluster &cluster, DeviceId d)
{
    std::vector<DeviceId> group;
    const DeviceId first = cluster.firstDeviceOf(cluster.node(d));
    for (int i = 0; i < cluster.devicesPerNode(); ++i)
        group.push_back(first + i);
    return group;
}

/** All device ids. */
std::vector<DeviceId>
allDevices(const Cluster &cluster)
{
    std::vector<DeviceId> group(cluster.numDevices());
    for (DeviceId d = 0; d < cluster.numDevices(); ++d)
        group[d] = d;
    return group;
}

/** Transpose a volume matrix (combine is the reverse of dispatch). */
VolumeMatrix
transpose(const VolumeMatrix &volume)
{
    const std::size_t n = volume.size();
    VolumeMatrix out(n, std::vector<Bytes>(n, 0));
    for (std::size_t i = 0; i < n; ++i)
        for (std::size_t k = 0; k < n; ++k)
            out[k][i] = volume[i][k];
    return out;
}

} // namespace

Seconds
lmHeadForwardTime(const ModelConfig &model, TokenCount tokens,
                  int tp_degree, double compute_flops)
{
    return static_cast<double>(tokens) * 2.0 * model.hiddenDim *
           model.vocabSize / (compute_flops * tp_degree);
}

Seconds
optimizerStepTime(const ModelConfig &model, int n_devices)
{
    // Fully sharded Adam sweep: read+write params, grads, moments.
    const double bytes =
        static_cast<double>(model.totalParams()) * 2.0 *
        (model.bytesPerParam + kOptimizerBytesPerParam) / n_devices;
    return bytes / kHbmBandwidth;
}

MicroBatchResult
simulateMicroBatch(const Cluster &cluster, const IterationSpec &spec)
{
    LAER_CHECK(spec.model != nullptr, "spec needs a model");
    LAER_CHECK(!spec.layerPlans.empty(), "spec needs layer plans");
    const ModelConfig &model = *spec.model;
    const int n = cluster.numDevices();
    const int layers = static_cast<int>(spec.layerPlans.size());
    const double bcomp = cluster.computeFlops();
    const TokenCount s = spec.tokensPerDevice;
    const bool fsep = usesFsep(spec.system);
    const bool is_megatron = spec.system == SystemKind::Megatron;
    const int tp = is_megatron ? std::max(1, spec.tpDegree) : 1;

    // Contention applies unless prefetch is both relaxed and ordered
    // behind the token All-to-All (Fig. 5(a)/(c) "slowdown").
    const bool contended =
        !is_megatron &&
        !(spec.flags.relaxedPrefetch && spec.flags.prefetchAfterA2A);
    const double contention = contended ? kChannelContention : 1.0;

    // ---- Fixed durations -------------------------------------------------
    // Attention (+gate) per device; Megatron adds TP activation
    // all-reduces (two per layer in forward).
    Seconds attn_fwd = static_cast<double>(s) *
                       (model.attnFlopsPerToken(spec.seqLen) +
                        2.0 * model.numExperts * model.hiddenDim) /
                       bcomp;
    if (is_megatron)
        attn_fwd *= 1.0 + kTpInefficiency * (tp - 1);
    if (is_megatron) {
        const Bytes act_bytes = static_cast<Bytes>(s) * tp *
                                model.tokenBytes();
        const std::vector<DeviceId> node0 = nodeGroup(cluster, 0);
        LAER_CHECK(tp <= static_cast<int>(node0.size()),
                   "TP degree exceeds the node width");
        const std::vector<DeviceId> tp_group(node0.begin(),
                                             node0.begin() + tp);
        attn_fwd += 2.0 * allReduceTime(cluster, tp_group, act_bytes);
    }

    // LM head once per micro-batch (sharded by TP when present).
    const Seconds head_fwd = lmHeadForwardTime(model, s, tp, bcomp);

    // Expert parameter prefetch (unshard) per layer.
    Seconds prefetch_dur = 0.0;
    const Bytes expert_bytes = model.expertParamBytes();
    const int cap = spec.capacityHint;

    if (fsep) {
        const Bytes per_pair = cap * expert_bytes / n;
        prefetch_dur =
            a2aUniformTime(cluster, allDevices(cluster), per_pair);
    } else if (spec.system == SystemKind::FsdpEp) {
        prefetch_dur = allGatherTime(cluster, nodeGroup(cluster, 0),
                                     static_cast<Bytes>(cap) *
                                         expert_bytes);
    }
    // Attention parameters ride the same prefetch stream (FSDP-style
    // AllGather within the node group); Megatron keeps them resident.
    if (!is_megatron)
        prefetch_dur += allGatherTime(
            cluster, nodeGroup(cluster, 0),
            model.nonExpertParamsPerLayer() * model.bytesPerParam);
    prefetch_dur *= contention;

    // Per-layer gradient synchronisation (reshard) duration.
    Seconds gradsync_dur = 0.0;
    if (fsep) {
        gradsync_dur = a2aUniformTime(cluster, allDevices(cluster),
                                      cap * expert_bytes / n) +
                       reduceScatterTime(
                           cluster, nodeGroup(cluster, 0),
                           model.nonExpertParamsPerLayer() *
                               model.bytesPerParam);
    } else if (spec.system == SystemKind::FsdpEp) {
        gradsync_dur =
            reduceScatterTime(cluster, nodeGroup(cluster, 0),
                              static_cast<Bytes>(cap) * expert_bytes) +
            reduceScatterTime(cluster, nodeGroup(cluster, 0),
                              model.nonExpertParamsPerLayer() *
                                  model.bytesPerParam);
    } else {
        // Megatron: expert grads all-reduce across the replicas of the
        // expert set (one device per EP group = the node group), and
        // attention grads all-reduce across DP ranks (cross-node).
        std::vector<DeviceId> dp_group;
        for (NodeId nd = 0; nd < cluster.numNodes(); ++nd)
            dp_group.push_back(cluster.firstDeviceOf(nd));
        gradsync_dur =
            allReduceTime(cluster, nodeGroup(cluster, 0),
                          static_cast<Bytes>(cap) * expert_bytes) +
            allReduceTime(cluster, dp_group,
                          model.nonExpertParamsPerLayer() *
                              model.bytesPerParam / tp);
    }

    // ---- Per-layer volumes and expert compute ---------------------------
    const Flops expert_flops = model.expertFlopsPerToken();
    std::vector<Seconds> dispatch_dur(layers), combine_dur(layers);
    std::vector<std::vector<Seconds>> expert_fwd(layers);
    const int etp_blur =
        is_megatron ? std::max(1, spec.expertTpDegree) : 1;
    for (int l = 0; l < layers; ++l) {
        const RoutingPlan &plan = *spec.layerPlans[l];
        VolumeMatrix volume = plan.dispatchVolume(model.tokenBytes());
        if (etp_blur > 1) {
            // Expert TP stripes each destination's token buffer over
            // its intra-node block, spreading the receive hotspot.
            VolumeMatrix blurred = zeroVolume(n);
            for (DeviceId i = 0; i < n; ++i)
                for (DeviceId k = 0; k < n; ++k) {
                    const DeviceId base = (k / etp_blur) * etp_blur;
                    for (int p = 0; p < etp_blur; ++p)
                        blurred[i][base + p] +=
                            volume[i][k] / etp_blur;
                }
            volume = std::move(blurred);
        }
        dispatch_dur[l] =
            a2aBottleneckTime(cluster, volume) * contention;
        combine_dur[l] = a2aBottleneckTime(cluster, transpose(volume));
        const std::vector<TokenCount> recv = plan.receivedTokens();
        const int etp =
            is_megatron ? std::max(1, spec.expertTpDegree) : 1;
        expert_fwd[l].resize(n);
        for (DeviceId d = 0; d < n; ++d) {
            // Expert TP shares each expert's GEMMs across the
            // contiguous intra-node block of etp devices: the block's
            // combined token load is computed jointly.
            TokenCount block = 0;
            const DeviceId base = (d / etp) * etp;
            for (int p = 0; p < etp; ++p)
                block += recv[base + p];
            expert_fwd[l][d] = static_cast<double>(block) *
                               expert_flops / (bcomp * etp);
        }
    }

    // ---- Build the task graph --------------------------------------------
    SimEngine engine(n);
    auto barrier = [&](const std::string &name, StreamKind stream,
                       Seconds dur, const std::vector<TaskId> &deps,
                       const std::string &cat) {
        std::vector<TaskId> ids(n);
        for (DeviceId d = 0; d < n; ++d)
            ids[d] = engine.addTask(name, d, stream, dur, deps, cat);
        return ids;
    };

    std::vector<std::vector<TaskId>> attn(layers), dispatch(layers),
        expert(layers), combine(layers), pf(layers);

    // Forward pass.
    for (int l = 0; l < layers; ++l) {
        // Expert parameter prefetch for this layer.
        if (prefetch_dur > 0.0) {
            pf[l].resize(n);
            for (DeviceId d = 0; d < n; ++d) {
                std::vector<TaskId> deps;
                if (l > 0) {
                    if (spec.flags.relaxedPrefetch &&
                        spec.flags.prefetchAfterA2A)
                        deps.push_back(dispatch[l - 1][d]);
                    else if (spec.flags.relaxedPrefetch)
                        deps.push_back(attn[l - 1][d]);
                    else
                        deps.push_back(combine[l - 1][d]);
                }
                pf[l][d] = engine.addTask("pf_fwd", d,
                                          StreamKind::Prefetch,
                                          prefetch_dur, deps,
                                          "prefetch");
            }
        }

        attn[l].resize(n);
        for (DeviceId d = 0; d < n; ++d) {
            std::vector<TaskId> deps;
            if (l > 0)
                deps.push_back(combine[l - 1][d]);
            attn[l][d] = engine.addTask("attn_fwd", d,
                                        StreamKind::Compute, attn_fwd,
                                        deps, "others");
        }

        std::vector<TaskId> a2a_deps;
        for (DeviceId d = 0; d < n; ++d)
            a2a_deps.push_back(attn[l][d]);
        dispatch[l] = barrier("dispatch_fwd", StreamKind::Dispatch,
                              dispatch_dur[l], a2a_deps, "a2a");

        expert[l].resize(n);
        for (DeviceId d = 0; d < n; ++d) {
            std::vector<TaskId> deps{dispatch[l][d]};
            if (!pf[l].empty())
                deps.push_back(pf[l][d]);
            expert[l][d] = engine.addTask("expert_fwd", d,
                                          StreamKind::Compute,
                                          expert_fwd[l][d], deps,
                                          "expert");
        }

        std::vector<TaskId> comb_deps;
        for (DeviceId d = 0; d < n; ++d)
            comb_deps.push_back(expert[l][d]);
        combine[l] = barrier("combine_fwd", StreamKind::Dispatch,
                             combine_dur[l], comb_deps, "a2a");
    }

    // LM head forward + backward (the turnaround point).
    std::vector<TaskId> head_fwd_ids(n), head_bwd_ids(n);
    for (DeviceId d = 0; d < n; ++d)
        head_fwd_ids[d] =
            engine.addTask("head_fwd", d, StreamKind::Compute, head_fwd,
                           {combine[layers - 1][d]}, "others");
    for (DeviceId d = 0; d < n; ++d)
        head_bwd_ids[d] =
            engine.addTask("head_bwd", d, StreamKind::Compute,
                           2.0 * head_fwd, {head_fwd_ids[d]}, "others");

    // Backward pass (layer order reversed). Recompute granularity
    // (Sec. 4): expert-only re-runs the expert GEMMs using the tokens
    // already dispatched; full recompute must re-issue the token
    // All-to-All as well — the overhead LAER-MoE's fine-grained option
    // exists to avoid.
    const bool recompute_expert =
        spec.checkpointing &&
        (spec.recompute == RecomputeMode::ExpertOnly ||
         spec.recompute == RecomputeMode::Full);
    const bool recompute_attn =
        spec.checkpointing &&
        (spec.recompute == RecomputeMode::AttentionOnly ||
         spec.recompute == RecomputeMode::Full);
    const bool recompute_a2a =
        spec.checkpointing && spec.recompute == RecomputeMode::Full;

    std::vector<TaskId> prev_attn_bwd = head_bwd_ids;
    std::vector<std::vector<TaskId>> bwd_dispatch(layers),
        bwd_pf(layers);
    for (int l = layers - 1; l >= 0; --l) {
        // Backward unshard prefetch for this layer's experts.
        if (prefetch_dur > 0.0) {
            bwd_pf[l].resize(n);
            for (DeviceId d = 0; d < n; ++d) {
                std::vector<TaskId> deps;
                if (l < layers - 1) {
                    if (spec.flags.relaxedPrefetch)
                        deps.push_back(bwd_dispatch[l + 1][d]);
                    else
                        deps.push_back(prev_attn_bwd[d]);
                }
                bwd_pf[l][d] = engine.addTask("pf_bwd", d,
                                              StreamKind::Prefetch,
                                              prefetch_dur, deps,
                                              "prefetch");
            }
        }

        std::vector<TaskId> grad_in_deps = prev_attn_bwd;
        bwd_dispatch[l] = barrier("dispatch_bwd", StreamKind::Dispatch,
                                  combine_dur[l], grad_in_deps, "a2a");

        // Full recompute re-dispatches the forward tokens before the
        // expert pass can be replayed.
        std::vector<TaskId> expert_ready = bwd_dispatch[l];
        if (recompute_a2a)
            expert_ready = barrier("recomp_dispatch",
                                   StreamKind::Dispatch,
                                   dispatch_dur[l], expert_ready,
                                   "a2a");

        // Expert backward: 2x forward, +1x when experts recompute.
        const double bwd_factor = 2.0 + (recompute_expert ? 1.0 : 0.0);
        std::vector<TaskId> expert_bwd(n);
        for (DeviceId d = 0; d < n; ++d) {
            std::vector<TaskId> deps{expert_ready[d]};
            if (!bwd_pf[l].empty())
                deps.push_back(bwd_pf[l][d]);
            expert_bwd[d] = engine.addTask(
                "expert_bwd", d, StreamKind::Compute,
                bwd_factor * expert_fwd[l][d], deps, "expert");
        }

        // Gradient resharding / synchronisation.
        if (spec.withGradSync && gradsync_dur > 0.0) {
            for (DeviceId d = 0; d < n; ++d) {
                const StreamKind stream = spec.flags.delayedGradSync
                                              ? StreamKind::GradSync
                                              : StreamKind::Compute;
                engine.addTask("gradsync", d, stream, gradsync_dur,
                               {expert_bwd[d]}, "gradsync");
            }
        }

        std::vector<TaskId> comb_deps = expert_bwd;
        const std::vector<TaskId> bwd_combine =
            barrier("combine_bwd", StreamKind::Dispatch,
                    dispatch_dur[l], comb_deps, "a2a");

        const double attn_bwd_factor =
            2.0 + (recompute_attn ? 1.0 : 0.0);
        std::vector<TaskId> attn_bwd(n);
        for (DeviceId d = 0; d < n; ++d)
            attn_bwd[d] = engine.addTask("attn_bwd", d,
                                         StreamKind::Compute,
                                         attn_bwd_factor * attn_fwd,
                                         {bwd_combine[d]}, "others");
        prev_attn_bwd = attn_bwd;
    }

    engine.run();

    MicroBatchResult result;
    result.makespan = engine.makespan();
    const auto busy = engine.categoryBusyPerDevice();
    auto get = [&](const char *key) {
        const auto it = busy.find(key);
        return it == busy.end() ? 0.0 : it->second;
    };
    result.a2aBusy = get("a2a");
    result.expertBusy = get("expert");
    result.othersBusy = get("others");
    result.exposedPrefetch = engine.exposedTime("prefetch");
    result.exposedGradSync = engine.exposedTime("gradsync");
    return result;
}

} // namespace laer
