/**
 * @file
 * End-to-end training-loop simulator (paper Fig. 7 workflow).
 *
 * Each iteration: per-layer routing matrices come from the synthetic
 * router; the active system decides each layer's expert layout
 * (LAER-MoE re-tunes from the PREVIOUS iteration's routing, exactly
 * like the paper's asynchronous CPU-side tuner; FlexMoE adjusts
 * incrementally with penalties; SmartMoE re-places on a long period;
 * the static baselines never move); the token dispatcher routes the
 * CURRENT iteration's tokens onto that layout; the iteration timeline
 * is then measured on the discrete-event engine.
 */

#ifndef LAER_RUNTIME_TRAINING_SIM_HH
#define LAER_RUNTIME_TRAINING_SIM_HH

#include <memory>
#include <vector>

#include "baselines/flexmoe.hh"
#include "baselines/smartmoe.hh"
#include "baselines/static_ep.hh"
#include "model/config.hh"
#include "planner/layout_tuner.hh"
#include "runtime/iteration.hh"
#include "runtime/system.hh"
#include "trace/routing_generator.hh"

namespace laer
{

/** Full experiment configuration for one system on one workload. */
struct SimulatorConfig
{
    ModelConfig model;
    SystemKind system = SystemKind::Laer;
    ScheduleFlags flags = ScheduleFlags::all();
    bool checkpointing = true;
    RecomputeMode recompute = RecomputeMode::ExpertOnly;
    int capacity = 2;             //!< C per device
    int seqLen = 8192;
    TokenCount tokensPerDevice = 16384;       //!< S per micro-batch
    TokenCount globalBatchTokens = 2097152;   //!< tokens per iteration
    int tpDegree = 1;             //!< Megatron attention TP
    /** Megatron's expert capacity per device. Whole experts must stay
     * resident, so memory pressure can force a larger EP degree than
     * the fully sharded systems use (Sec. 5.2: e8k2 needs EP = E,
     * i.e. one expert per device). 0 = same as `capacity`. */
    int megatronCapacity = 0;
    /** Megatron expert tensor parallelism (parallel folding). */
    int megatronExpertTp = 1;
    int simulatedLayers = 8;      //!< MoE layers carried through the
                                  //!< DES (timing scales to model.layers)
    RoutingModel routing;         //!< synthetic router parameters
    TunerConfig tuner;            //!< LAER planner knobs
    int flexMaxMoves = 2;         //!< FlexMoE adjustments per step
    int smartPeriod = 100;        //!< SmartMoE re-layout period
    std::uint64_t seed = 42;
};

/** Outcome of one simulated training iteration. */
struct IterationResult
{
    Seconds time = 0.0;          //!< end-to-end iteration seconds
    /** Token All-to-All wall time as a profiler reports it: the NCCL
     * op spans from the earliest entering rank until completion, so
     * straggler wait caused by compute imbalance lands here — exactly
     * how the paper's Fig. 1(b)/10(a) attribute time. */
    Seconds a2a = 0.0;
    Seconds expert = 0.0;        //!< expert compute per device
    Seconds others = 0.0;        //!< attention / head / optimizer
    Seconds exposedPrefetch = 0.0;
    Seconds exposedGradSync = 0.0;
    Seconds migration = 0.0;     //!< baseline re-layout overhead
    Seconds plannerWall = 0.0;   //!< measured CPU solve time (all layers)
    double maxRelTokens = 0.0;   //!< mean over layers of max/mean recv
    double tokensPerSecond = 0.0;
};

/**
 * The simulator. step() advances one training iteration.
 */
class TrainingSimulator
{
  public:
    TrainingSimulator(const Cluster &cluster,
                      const SimulatorConfig &config);
    ~TrainingSimulator();

    /** Simulate the next training iteration. */
    IterationResult step();

    /** Run n iterations and return all results. */
    std::vector<IterationResult> run(int n);

    /** Mean iteration time over a result set, seconds. */
    static Seconds meanTime(const std::vector<IterationResult> &results);

    const SimulatorConfig &config() const { return config_; }

  private:
    const Cluster &cluster_;
    SimulatorConfig config_;
    int microSteps_;
    EpGrouping grouping_;
    ExpertLayout staticLayout_;
    std::vector<RoutingGenerator> generators_; //!< one per sim layer
    std::vector<RoutingMatrix> prevRouting_;   //!< last iteration's R
    std::vector<ExpertLayout> currentLayouts_; //!< per sim layer
    std::vector<std::unique_ptr<FlexMoePlanner>> flexPlanners_;
    std::vector<std::unique_ptr<SmartMoePlanner>> smartPlanners_;
    int iteration_ = 0;
};

} // namespace laer

#endif // LAER_RUNTIME_TRAINING_SIM_HH
