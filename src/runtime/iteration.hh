/**
 * @file
 * Iteration graph builder: turns per-layer routing plans into the
 * stream/task timeline of Fig. 5 / Fig. 7 and measures it on the
 * discrete-event engine.
 */

#ifndef LAER_RUNTIME_ITERATION_HH
#define LAER_RUNTIME_ITERATION_HH

#include <vector>

#include "model/config.hh"
#include "planner/types.hh"
#include "runtime/system.hh"
#include "sim/engine.hh"
#include "topo/cluster.hh"

namespace laer
{

/** Inflation applied to wire ops that contend for the same channel
 * when prefetch is NOT serialised behind the token All-to-All
 * (Fig. 5(c) "slowdown"). */
constexpr double kChannelContention = 1.35;

/** Effective HBM bandwidth for the optimizer sweep, B/s. */
constexpr double kHbmBandwidth = 1.3e12;

/** Per-way GEMM efficiency loss of tensor parallelism: splitting the
 * attention projections shrinks per-device GEMMs below their
 * efficiency sweet spot (Sec. 5.2: "larger TP ... hurting
 * efficiency"). Compute time scales by 1 + k*(tp-1). */
constexpr double kTpInefficiency = 0.08;

/**
 * Fine-grained recomputation granularity (paper Sec. 4): LAER-MoE can
 * recompute just the expert MLP (avoiding extra All-to-All during the
 * backward pass), just attention, both (which re-dispatches tokens),
 * or nothing.
 */
enum class RecomputeMode
{
    None,          //!< keep all activations
    ExpertOnly,    //!< re-run expert GEMMs, reuse dispatched tokens
    AttentionOnly, //!< re-run attention, keep expert activations
    Full,          //!< re-run the whole layer incl. token All-to-All
};

/** Static description of one micro-batch to simulate. */
struct IterationSpec
{
    const ModelConfig *model = nullptr;
    SystemKind system = SystemKind::Laer;
    ScheduleFlags flags = ScheduleFlags::all();
    bool checkpointing = true;
    /** Recompute granularity; checkpointing==true with the default
     * mode means ExpertOnly (the paper's choice). */
    RecomputeMode recompute = RecomputeMode::ExpertOnly;
    int seqLen = 8192;
    TokenCount tokensPerDevice = 16384; //!< S per micro-batch
    int tpDegree = 1;                   //!< Megatron attention TP
    /** Megatron expert tensor parallelism: each expert's GEMMs split
     * over this many devices, shrinking the per-device compute tail
     * (Megatron "MoE parallel folding"). 1 = off. */
    int expertTpDegree = 1;
    int capacityHint = 2;               //!< C, expert slots per device
    bool withGradSync = true;           //!< last micro-batch of the step
    /** Per-MoE-layer token routing plans (already decided). */
    std::vector<const RoutingPlan *> layerPlans;
};

/** Timing and breakdown of one simulated micro-batch. */
struct MicroBatchResult
{
    Seconds makespan = 0.0;
    Seconds a2aBusy = 0.0;       //!< token A2A per device
    Seconds expertBusy = 0.0;    //!< expert fwd+bwd compute per device
    Seconds othersBusy = 0.0;    //!< attention, head, misc compute
    Seconds exposedPrefetch = 0.0;
    Seconds exposedGradSync = 0.0;
};

/**
 * Build the full forward+backward timeline of one micro-batch on the
 * event engine and return its timing breakdown.
 */
MicroBatchResult simulateMicroBatch(const Cluster &cluster,
                                    const IterationSpec &spec);

/** Optimizer-step duration (fully sharded parameter sweep). */
Seconds optimizerStepTime(const ModelConfig &model, int n_devices);

/** LM-head forward time for one micro-batch (backward costs 2x). */
Seconds lmHeadForwardTime(const ModelConfig &model, TokenCount tokens,
                          int tp_degree, double compute_flops);

} // namespace laer

#endif // LAER_RUNTIME_ITERATION_HH
