/**
 * @file
 * System identities and schedule flags shared by the runtime.
 */

#ifndef LAER_RUNTIME_SYSTEM_HH
#define LAER_RUNTIME_SYSTEM_HH

#include <string>

namespace laer
{

/** The training systems compared in the paper's evaluation. */
enum class SystemKind
{
    Laer,     //!< FSEP + load-balancing planner (this paper)
    FsdpEp,   //!< FSDP+EP baseline with Sec. 3.1 comm optimisations
    Megatron, //!< heterogeneous EP + TP attention, static layout
    FlexMoe,  //!< FSEP executor + FlexMoE scheduler (Sec. 5.2 setup)
    SmartMoe, //!< relocation-only planner at low frequency
};

/** Printable system name matching the paper's labels. */
const char *systemName(SystemKind kind);

/**
 * The three communication-scheduling optimisations of Fig. 5. All on
 * for LAER-MoE (and the strengthened FSDP+EP baseline); all off
 * reproduces the "no_comm_opt" ablation of Fig. 12.
 */
struct ScheduleFlags
{
    /** Fig. 5(b): prefetch layer L+1 experts under layer L's expert
     * computation instead of under attention. */
    bool relaxedPrefetch = true;

    /** Fig. 5(c): launch prefetch only after the token All-to-All has
     * finished to avoid channel contention. */
    bool prefetchAfterA2A = true;

    /** Fig. 5(e): postpone gradient resharding to overlap the next
     * layer's backward computation. */
    bool delayedGradSync = true;

    /** All optimisations enabled. */
    static ScheduleFlags all() { return {true, true, true}; }

    /** All optimisations disabled. */
    static ScheduleFlags none() { return {false, false, false}; }
};

} // namespace laer

#endif // LAER_RUNTIME_SYSTEM_HH
